package online

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"trips/internal/geom"
	"trips/internal/position"
)

// shadowPair builds two engines over the same pipeline: the incremental one
// under test and a full-recompute shadow whose every flush re-translates
// the whole tail. Both run one shard with manual flushing so the record
// streams and flush cadences are identical.
func shadowPair(t *testing.T, pl Pipeline, maxTail int) (inc, full *Engine, incSink, fullSink *collectEmitter) {
	t.Helper()
	incSink, fullSink = newCollect(), newCollect()
	cfgInc := manualConfig(incSink, 1)
	cfgInc.FlushEvery = 8
	cfgInc.MaxTail = maxTail
	cfgFull := manualConfig(fullSink, 1)
	cfgFull.FlushEvery = 8
	cfgFull.MaxTail = maxTail
	cfgFull.fullRecompute = true
	var err error
	if inc, err = NewEngine(pl, cfgInc); err != nil {
		t.Fatal(err)
	}
	if full, err = NewEngine(pl, cfgFull); err != nil {
		t.Fatal(err)
	}
	return inc, full, incSink, fullSink
}

func assertSameEmissions(t *testing.T, label string, incSink, fullSink *collectEmitter) {
	t.Helper()
	if len(incSink.byDev) != len(fullSink.byDev) {
		t.Fatalf("%s: %d devices incremental, %d full", label, len(incSink.byDev), len(fullSink.byDev))
	}
	for dev, want := range fullSink.byDev {
		got := incSink.byDev[dev]
		if len(got) != len(want) {
			t.Fatalf("%s: device %s emitted %d triplets incrementally, %d on full recompute", label, dev, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s: device %s triplet %d differs:\nincremental: %+v\nfull:        %+v", label, dev, i, got[i], want[i])
			}
		}
	}
}

// TestFlushIncrementalMatchesFull is the subsystem's differential lock:
// random record streams — noisy dwells and walks, floor flips, out-of-order
// arrivals, genuinely late records, 30-minute hard breaks — run through the
// incremental flush and a full-recompute shadow engine with the same flush
// cadence, and every emission must be identical. Run it under -race too:
// the incremental caches live inside shard-owned sessions.
func TestFlushIncrementalMatchesFull(t *testing.T) {
	pl := testPipeline(t)
	var incrementalFlushes int64
	for seed := uint64(1); seed <= 6; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			g := lcg(seed)
			inc, full, incSink, fullSink := shadowPair(t, pl, 0)
			centers := []geom.Point{geom.Pt(5, 15), geom.Pt(25, 15), geom.Pt(15, 5)}
			at := t0
			dev := position.DeviceID("dev-1")
			sent := 0
			feed := func(r position.Record) {
				if err1, err2 := inc.Ingest(r), full.Ingest(r); err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				sent++
				if sent%13 == 0 {
					inc.Flush()
					full.Flush()
				}
			}
			for leg := 0; leg < 12; leg++ {
				c := centers[int(g.next()*float64(len(centers)))%len(centers)]
				n := 30 + int(g.next()*60)
				for i := 0; i < n; i++ {
					p := geom.Pt(c.X+(g.next()-0.5)*2, c.Y+(g.next()-0.5)*2)
					r := position.Record{Device: dev, P: p, Floor: 1, At: at}
					switch {
					case g.next() < 0.05:
						// Out-of-order: backdate within the open window.
						r.At = at.Add(-time.Duration(g.next()*20) * time.Second)
					case g.next() < 0.02:
						// Genuinely late: far behind any seal frontier.
						r.At = t0.Add(-time.Hour)
					case g.next() < 0.03:
						r.Floor = 2 // floor glitch for the cleaner
					}
					feed(r)
					at = at.Add(time.Duration(2+g.next()*6) * time.Second)
				}
				if g.next() < 0.25 {
					at = at.Add(30 * time.Minute) // hard break: trims the tail
				}
			}
			inc.Flush()
			full.Flush()
			assertSameEmissions(t, "pre-close", incSink, fullSink)
			incrementalFlushes += inc.Stats().IncrementalFlushes
			if is, fs := inc.Stats(), full.Stats(); is.TripletsOut != fs.TripletsOut || is.Late != fs.Late || is.Trims != fs.Trims {
				t.Errorf("stats diverged: incremental %+v, full %+v", is, fs)
			}
			inc.Close()
			full.Close()
			assertSameEmissions(t, "post-close", incSink, fullSink)
		})
	}
	// Some seeds hard-break so often that every flush starts a fresh
	// epoch; across the suite the fast path must have been exercised.
	if incrementalFlushes == 0 {
		t.Error("no incremental flush reused a stable prefix; the fast path went untested")
	}
}

// TestFlushIncrementalMatchesFullStationary drives the MaxTail force-seal
// path: a stationary device whose single growing dwell never seals
// naturally, where every epoch reset must invalidate the caches.
func TestFlushIncrementalMatchesFullStationary(t *testing.T) {
	pl := testPipeline(t)
	g := lcg(31)
	inc, full, incSink, fullSink := shadowPair(t, pl, 150)
	recs := stayRecords(&g, "couch", geom.Pt(5, 15), 1, t0, 2000, 5*time.Second)
	for i, r := range recs {
		if err1, err2 := inc.Ingest(r), full.Ingest(r); err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if i%40 == 39 {
			inc.Flush()
			full.Flush()
		}
	}
	inc.Flush()
	full.Flush()
	if st := inc.Stats(); st.ForcedSeals == 0 {
		t.Error("stationary stream never force-sealed; MaxTail path untested")
	}
	inc.Close()
	full.Close()
	assertSameEmissions(t, "stationary", incSink, fullSink)
}
