package floorplan

import (
	"fmt"
	"image"
	"image/color"
	"sort"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// The raster tracer semi-automates step (2) of the Space Modeler flow: given
// a floorplan image it extracts walkable partitions and doors as drawn
// shapes on a Canvas, which the analyst then refines and tags. The image
// convention follows annotated floorplans: dark pixels are walls, light
// pixels are free space, and mid-gray pixels mark door openings.

// TraceOptions parameterize the raster tracer.
type TraceOptions struct {
	// MetersPerPixel scales pixel coordinates into meters (default 0.25).
	MetersPerPixel float64
	// WallBelow: luminance strictly below this is wall (default 80).
	WallBelow uint8
	// DoorBelow: luminance in [WallBelow, DoorBelow) is a door opening
	// (default 200); at or above is free space.
	DoorBelow uint8
	// MinRoomArea drops free-space specks smaller than this many square
	// meters (default 1.0).
	MinRoomArea float64
}

// DefaultTraceOptions returns the standard tracer settings.
func DefaultTraceOptions() TraceOptions {
	return TraceOptions{MetersPerPixel: 0.25, WallBelow: 80, DoorBelow: 200, MinRoomArea: 1.0}
}

type pixelClass uint8

const (
	classWall pixelClass = iota
	classDoor
	classFree
)

// Trace extracts a Canvas from a floorplan image: the largest free-space
// component becomes the hallway, the remaining components rooms, and door
// pixel clusters door entities. The caller assigns names and semantic tags
// afterward, completing the semi-automatic flow.
func Trace(img image.Image, floor dsm.FloorID, opts TraceOptions) (*Canvas, error) {
	if opts.MetersPerPixel <= 0 {
		opts.MetersPerPixel = 0.25
	}
	if opts.WallBelow == 0 {
		opts.WallBelow = 80
	}
	if opts.DoorBelow <= opts.WallBelow {
		opts.DoorBelow = 200
	}
	if opts.MinRoomArea <= 0 {
		opts.MinRoomArea = 1.0
	}
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	if w == 0 || h == 0 {
		return nil, fmt.Errorf("floorplan: empty image")
	}

	// Classify pixels.
	cls := make([]pixelClass, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			lum := luminance(img.At(b.Min.X+x, b.Min.Y+y))
			switch {
			case lum < opts.WallBelow:
				cls[y*w+x] = classWall
			case lum < opts.DoorBelow:
				cls[y*w+x] = classDoor
			default:
				cls[y*w+x] = classFree
			}
		}
	}

	freeComps := components(cls, w, h, classFree)
	doorComps := components(cls, w, h, classDoor)
	if len(freeComps) == 0 {
		return nil, fmt.Errorf("floorplan: no free space found")
	}

	// Largest free component is the hallway.
	sort.Slice(freeComps, func(i, j int) bool { return len(freeComps[i]) > len(freeComps[j]) })

	canvas := NewCanvas(floor)
	canvas.SnapRadius = 0 // traced coordinates are already aligned
	scale := opts.MetersPerPixel
	minPixels := int(opts.MinRoomArea / (scale * scale))

	roomN := 0
	for i, comp := range freeComps {
		if len(comp) < minPixels {
			continue
		}
		poly := componentPolygon(comp, w, scale)
		if poly.Validate() != nil {
			continue
		}
		kind := dsm.KindRoom
		name := fmt.Sprintf("room-%d", roomN)
		if i == 0 {
			kind = dsm.KindHallway
			name = "hallway"
		} else {
			roomN++
		}
		if _, err := canvas.DrawPolygon(kind, name, poly.Vertices...); err != nil {
			return nil, err
		}
	}
	for i, comp := range doorComps {
		if len(comp) == 0 {
			continue
		}
		poly := componentPolygon(comp, w, scale)
		if poly.Validate() != nil {
			continue
		}
		name := fmt.Sprintf("door-%d", i)
		if _, err := canvas.DrawPolygon(dsm.KindDoor, name, poly.Vertices...); err != nil {
			return nil, err
		}
	}
	return canvas, nil
}

// luminance converts a color to 8-bit luma.
func luminance(c color.Color) uint8 {
	r, g, b, _ := c.RGBA()
	// Rec. 601 luma on 16-bit channels.
	return uint8((299*r + 587*g + 114*b) / 1000 >> 8)
}

// components returns the 4-connected components of pixels with the given
// class, each as a list of indexes y*w+x.
func components(cls []pixelClass, w, h int, want pixelClass) [][]int {
	seen := make([]bool, len(cls))
	var comps [][]int
	var stack []int
	for start := range cls {
		if seen[start] || cls[start] != want {
			continue
		}
		var comp []int
		stack = append(stack[:0], start)
		seen[start] = true
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, i)
			x, y := i%w, i/w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					continue
				}
				j := ny*w + nx
				if !seen[j] && cls[j] == want {
					seen[j] = true
					stack = append(stack, j)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// componentPolygon traces the outer boundary of a pixel component and
// returns it as a simplified polygon in meters. The boundary is the chain
// of unit edges that have a component pixel on exactly one side, followed
// counter-clockwise (component on the left).
func componentPolygon(comp []int, w int, scale float64) geom.Polygon {
	inside := make(map[[2]int]bool, len(comp))
	for _, i := range comp {
		inside[[2]int{i % w, i / w}] = true
	}
	// Directed boundary edges keyed by start corner. Corners are pixel
	// lattice points.
	type corner = [2]int
	next := make(map[corner][]corner)
	addEdge := func(a, b corner) { next[a] = append(next[a], b) }
	for c := range inside {
		x, y := c[0], c[1]
		if !inside[[2]int{x, y - 1}] { // top edge, inside below: left→right
			addEdge(corner{x, y}, corner{x + 1, y})
		}
		if !inside[[2]int{x + 1, y}] { // right edge: top→bottom
			addEdge(corner{x + 1, y}, corner{x + 1, y + 1})
		}
		if !inside[[2]int{x, y + 1}] { // bottom edge: right→left
			addEdge(corner{x + 1, y + 1}, corner{x, y + 1})
		}
		if !inside[[2]int{x - 1, y}] { // left edge: bottom→top
			addEdge(corner{x, y + 1}, corner{x, y})
		}
	}
	if len(next) == 0 {
		return geom.Polygon{}
	}
	// Start at the lexicographically smallest corner (guaranteed on the
	// outer ring) and follow edges; at ambiguous corners prefer the
	// left-most turn to stay on the outer boundary.
	start := corner{1 << 30, 1 << 30}
	for c := range next {
		if c[1] < start[1] || (c[1] == start[1] && c[0] < start[0]) {
			start = c
		}
	}
	var ring []corner
	cur := start
	var dir [2]int // incoming direction
	for {
		ring = append(ring, cur)
		cands := next[cur]
		if len(cands) == 0 {
			break
		}
		best := cands[0]
		if len(cands) > 1 && (dir != [2]int{}) {
			// Pick the candidate that turns most to the left of dir.
			bestScore := -3
			for _, cd := range cands {
				nd := [2]int{cd[0] - cur[0], cd[1] - cur[1]}
				score := turnScore(dir, nd)
				if score > bestScore {
					bestScore, best = score, cd
				}
			}
		}
		// Consume the chosen edge.
		list := next[cur]
		for i, cd := range list {
			if cd == best {
				next[cur] = append(list[:i], list[i+1:]...)
				break
			}
		}
		dir = [2]int{best[0] - cur[0], best[1] - cur[1]}
		cur = best
		if cur == start {
			break
		}
		if len(ring) > 4*len(comp)+8 {
			break // safety against malformed chains
		}
	}
	// Collapse collinear runs and scale.
	pts := make([]geom.Point, 0, len(ring))
	for i, c := range ring {
		if i > 0 && i < len(ring)-1 {
			a, b, d := ring[i-1], ring[i], ring[i+1]
			if (b[0]-a[0])*(d[1]-b[1]) == (b[1]-a[1])*(d[0]-b[0]) {
				continue // collinear
			}
		}
		pts = append(pts, geom.Pt(float64(c[0])*scale, float64(c[1])*scale))
	}
	return geom.Polygon{Vertices: pts}
}

// turnScore ranks the turn from direction a to b: left turn 2, straight 1,
// right turn 0, reverse -1. In image coordinates (y down) a counter-
// clockwise boundary with the inside on the left keeps left turns tight at
// pinch corners.
func turnScore(a, b [2]int) int {
	cross := a[0]*b[1] - a[1]*b[0]
	dot := a[0]*b[0] + a[1]*b[1]
	switch {
	case cross < 0:
		return 2
	case cross == 0 && dot > 0:
		return 1
	case cross > 0:
		return 0
	default:
		return -1
	}
}
