// Package floorplan implements the Space Modeler of the TRIPS Configurator:
// the drawing tool that turns a floorplan into a Digital Space Model, and a
// raster tracer that semi-automates the drawing from a floorplan image.
//
// The paper (Sec. 3, Fig. 2) describes a three-step flow: (1) import the
// floorplan image, (2) trace it by drawing and combining geometric elements
// (polygons, polylines, circles) with editing conveniences (undo/redo,
// auto-adjust snapping, move/resize, layer and group control), (3) attach
// semantic tags to the drawn entities. This package provides the same
// operations as a programmatic API: a Canvas records draw/edit operations
// with full undo/redo, and Build compiles the canvas into a frozen DSM.
package floorplan

import (
	"fmt"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// ShapeKind enumerates the geometric elements the drawing tool offers.
type ShapeKind string

// Shape kinds.
const (
	ShapePolygon  ShapeKind = "polygon"
	ShapePolyline ShapeKind = "polyline"
	ShapeCircle   ShapeKind = "circle"
)

// Shape is one drawn element on the canvas.
type Shape struct {
	ID    int       `json:"id"`
	Kind  ShapeKind `json:"kind"`
	Layer string    `json:"layer,omitempty"`
	Group string    `json:"group,omitempty"`

	// Entity classification and naming for DSM compilation.
	EntityKind dsm.EntityKind `json:"entityKind"`
	Name       string         `json:"name,omitempty"`

	// Geometry: Polygon for polygons, Points for polylines, Center/Radius
	// for circles.
	Polygon geom.Polygon  `json:"polygon,omitempty"`
	Points  geom.Polyline `json:"points,omitempty"`
	Center  geom.Point    `json:"center,omitempty"`
	Radius  float64       `json:"radius,omitempty"`

	// SemanticTag and Category create a semantic region over the shape
	// when set (step 3 of the flow).
	SemanticTag string            `json:"semanticTag,omitempty"`
	Category    string            `json:"category,omitempty"`
	Style       map[string]string `json:"style,omitempty"`
}

// Canvas is the drawing surface for one floor. All mutating operations are
// recorded and undoable.
type Canvas struct {
	Floor dsm.FloorID

	// SnapRadius is the auto-adjust hint distance: new vertices within
	// this range of an existing vertex snap onto it (0 disables).
	SnapRadius float64

	shapes []Shape
	nextID int
	undo   []snapshot
	redo   []snapshot
}

// snapshot is a full-state memento. Shape counts on a floorplan are small
// (tens to hundreds), so snapshot undo is simpler and safer than command
// inversion.
type snapshot struct {
	shapes []Shape
	nextID int
}

// NewCanvas creates an empty canvas for the floor.
func NewCanvas(floor dsm.FloorID) *Canvas {
	return &Canvas{Floor: floor, SnapRadius: 0.3}
}

func (c *Canvas) save() {
	c.undo = append(c.undo, snapshot{append([]Shape(nil), c.shapes...), c.nextID})
	c.redo = nil
}

// Undo reverts the last mutating operation; it reports whether anything was
// undone.
func (c *Canvas) Undo() bool {
	if len(c.undo) == 0 {
		return false
	}
	c.redo = append(c.redo, snapshot{c.shapes, c.nextID})
	last := c.undo[len(c.undo)-1]
	c.undo = c.undo[:len(c.undo)-1]
	c.shapes, c.nextID = last.shapes, last.nextID
	return true
}

// Redo reapplies the last undone operation.
func (c *Canvas) Redo() bool {
	if len(c.redo) == 0 {
		return false
	}
	c.undo = append(c.undo, snapshot{c.shapes, c.nextID})
	last := c.redo[len(c.redo)-1]
	c.redo = c.redo[:len(c.redo)-1]
	c.shapes, c.nextID = last.shapes, last.nextID
	return true
}

// snap applies the auto-adjust hint to a point.
func (c *Canvas) snap(p geom.Point) geom.Point {
	if c.SnapRadius <= 0 {
		return p
	}
	best := p
	bestD := c.SnapRadius
	consider := func(q geom.Point) {
		if d := p.Dist(q); d < bestD {
			best, bestD = q, d
		}
	}
	for _, s := range c.shapes {
		for _, v := range s.Polygon.Vertices {
			consider(v)
		}
		for _, v := range s.Points.Points {
			consider(v)
		}
	}
	return best
}

// DrawPolygon adds a polygon entity, snapping each vertex. It returns the
// shape ID.
func (c *Canvas) DrawPolygon(kind dsm.EntityKind, name string, pts ...geom.Point) (int, error) {
	snapped := make([]geom.Point, len(pts))
	for i, p := range pts {
		snapped[i] = c.snap(p)
	}
	pg := geom.Polygon{Vertices: snapped}
	if err := pg.Validate(); err != nil {
		return 0, fmt.Errorf("floorplan: draw polygon: %w", err)
	}
	c.save()
	id := c.allocID()
	c.shapes = append(c.shapes, Shape{
		ID: id, Kind: ShapePolygon, EntityKind: kind, Name: name, Polygon: pg,
	})
	return id, nil
}

// DrawRect is the rectangle convenience over DrawPolygon.
func (c *Canvas) DrawRect(kind dsm.EntityKind, name string, a, b geom.Point) (int, error) {
	r := geom.NewRect(a, b)
	return c.DrawPolygon(kind, name, r.Vertices()...)
}

// DrawPolyline adds a polyline (walls are commonly traced as lines and
// thickened at compile time). Width applies at DSM compilation.
func (c *Canvas) DrawPolyline(kind dsm.EntityKind, name string, pts ...geom.Point) (int, error) {
	if len(pts) < 2 {
		return 0, fmt.Errorf("floorplan: polyline needs ≥2 points")
	}
	snapped := make([]geom.Point, len(pts))
	for i, p := range pts {
		snapped[i] = c.snap(p)
	}
	c.save()
	id := c.allocID()
	c.shapes = append(c.shapes, Shape{
		ID: id, Kind: ShapePolyline, EntityKind: kind, Name: name,
		Points: geom.Polyline{Points: snapped},
	})
	return id, nil
}

// DrawCircle adds a circular entity (pillar, kiosk).
func (c *Canvas) DrawCircle(kind dsm.EntityKind, name string, center geom.Point, radius float64) (int, error) {
	if radius <= 0 {
		return 0, fmt.Errorf("floorplan: non-positive radius")
	}
	c.save()
	id := c.allocID()
	c.shapes = append(c.shapes, Shape{
		ID: id, Kind: ShapeCircle, EntityKind: kind, Name: name,
		Center: c.snap(center), Radius: radius,
	})
	return id, nil
}

func (c *Canvas) allocID() int {
	c.nextID++
	return c.nextID
}

// shapeIndex locates a shape by ID.
func (c *Canvas) shapeIndex(id int) int {
	for i := range c.shapes {
		if c.shapes[i].ID == id {
			return i
		}
	}
	return -1
}

// Shape returns a copy of the shape with the given ID.
func (c *Canvas) Shape(id int) (Shape, bool) {
	if i := c.shapeIndex(id); i >= 0 {
		return c.shapes[i], true
	}
	return Shape{}, false
}

// Shapes returns a copy of all shapes in draw order.
func (c *Canvas) Shapes() []Shape { return append([]Shape(nil), c.shapes...) }

// Delete removes a shape.
func (c *Canvas) Delete(id int) error {
	i := c.shapeIndex(id)
	if i < 0 {
		return fmt.Errorf("floorplan: no shape %d", id)
	}
	c.save()
	c.shapes = append(c.shapes[:i], c.shapes[i+1:]...)
	return nil
}

// Move translates a shape by d (the free-transformation edit mode).
func (c *Canvas) Move(id int, d geom.Point) error {
	i := c.shapeIndex(id)
	if i < 0 {
		return fmt.Errorf("floorplan: no shape %d", id)
	}
	c.save()
	s := &c.shapes[i]
	s.Polygon = s.Polygon.Translate(d)
	moved := make([]geom.Point, len(s.Points.Points))
	for j, p := range s.Points.Points {
		moved[j] = p.Add(d)
	}
	s.Points = geom.Polyline{Points: moved}
	s.Center = s.Center.Add(d)
	return nil
}

// Resize scales a shape about its centroid by factor k (resizing edit mode).
func (c *Canvas) Resize(id int, k float64) error {
	if k <= 0 {
		return fmt.Errorf("floorplan: non-positive scale %v", k)
	}
	i := c.shapeIndex(id)
	if i < 0 {
		return fmt.Errorf("floorplan: no shape %d", id)
	}
	c.save()
	s := &c.shapes[i]
	scaleAbout := func(p, about geom.Point) geom.Point {
		return about.Add(p.Sub(about).Scale(k))
	}
	switch s.Kind {
	case ShapePolygon:
		ctr := s.Polygon.Centroid()
		vs := make([]geom.Point, len(s.Polygon.Vertices))
		for j, v := range s.Polygon.Vertices {
			vs[j] = scaleAbout(v, ctr)
		}
		s.Polygon = geom.Polygon{Vertices: vs}
	case ShapePolyline:
		ctr := geom.Centroid(s.Points.Points)
		vs := make([]geom.Point, len(s.Points.Points))
		for j, v := range s.Points.Points {
			vs[j] = scaleAbout(v, ctr)
		}
		s.Points = geom.Polyline{Points: vs}
	case ShapeCircle:
		s.Radius *= k
	}
	return nil
}

// SetLayer assigns the shape to a display layer.
func (c *Canvas) SetLayer(id int, layer string) error {
	return c.update(id, func(s *Shape) { s.Layer = layer })
}

// SetGroup assigns the shape to a group (group control).
func (c *Canvas) SetGroup(id int, group string) error {
	return c.update(id, func(s *Shape) { s.Group = group })
}

// SetStyle attaches a display style key/value.
func (c *Canvas) SetStyle(id int, key, value string) error {
	return c.update(id, func(s *Shape) {
		if s.Style == nil {
			s.Style = make(map[string]string)
		}
		s.Style[key] = value
	})
}

// AssignTag attaches a semantic tag and category to a drawn shape — step (3)
// of the paper's flow, creating a semantic region at compile time.
func (c *Canvas) AssignTag(id int, tag, category string) error {
	if tag == "" {
		return fmt.Errorf("floorplan: empty semantic tag")
	}
	return c.update(id, func(s *Shape) { s.SemanticTag = tag; s.Category = category })
}

func (c *Canvas) update(id int, f func(*Shape)) error {
	i := c.shapeIndex(id)
	if i < 0 {
		return fmt.Errorf("floorplan: no shape %d", id)
	}
	c.save()
	f(&c.shapes[i])
	return nil
}

// MoveGroup translates every shape of a group together.
func (c *Canvas) MoveGroup(group string, d geom.Point) {
	c.save()
	for i := range c.shapes {
		if c.shapes[i].Group != group {
			continue
		}
		s := &c.shapes[i]
		s.Polygon = s.Polygon.Translate(d)
		moved := make([]geom.Point, len(s.Points.Points))
		for j, p := range s.Points.Points {
			moved[j] = p.Add(d)
		}
		s.Points = geom.Polyline{Points: moved}
		s.Center = s.Center.Add(d)
	}
}
