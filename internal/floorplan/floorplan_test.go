package floorplan

import (
	"image"
	"image/color"
	"testing"

	"trips/internal/dsm"
	"trips/internal/geom"
)

func TestDrawAndUndoRedo(t *testing.T) {
	c := NewCanvas(1)
	id1, err := c.DrawRect(dsm.KindHallway, "hall", geom.Pt(0, 0), geom.Pt(40, 10))
	if err != nil {
		t.Fatalf("DrawRect: %v", err)
	}
	id2, err := c.DrawRect(dsm.KindRoom, "shop", geom.Pt(0, 10.4), geom.Pt(10, 20))
	if err != nil {
		t.Fatalf("DrawRect 2: %v", err)
	}
	if id1 == id2 {
		t.Error("shape IDs not unique")
	}
	if len(c.Shapes()) != 2 {
		t.Fatalf("shapes = %d", len(c.Shapes()))
	}
	if !c.Undo() {
		t.Fatal("Undo failed")
	}
	if len(c.Shapes()) != 1 {
		t.Errorf("after undo: %d shapes", len(c.Shapes()))
	}
	if !c.Redo() {
		t.Fatal("Redo failed")
	}
	if len(c.Shapes()) != 2 {
		t.Errorf("after redo: %d shapes", len(c.Shapes()))
	}
	// Redo stack clears on a new draw.
	c.Undo()
	if _, err := c.DrawCircle(dsm.KindObstacle, "pillar", geom.Pt(20, 5), 1); err != nil {
		t.Fatal(err)
	}
	if c.Redo() {
		t.Error("Redo should be empty after a new operation")
	}
	// Undo on an empty stack returns false eventually.
	for c.Undo() {
	}
	if len(c.Shapes()) != 0 {
		t.Errorf("full undo left %d shapes", len(c.Shapes()))
	}
}

func TestDrawValidation(t *testing.T) {
	c := NewCanvas(1)
	if _, err := c.DrawPolygon(dsm.KindRoom, "bad", geom.Pt(0, 0), geom.Pt(1, 1)); err == nil {
		t.Error("degenerate polygon accepted")
	}
	if _, err := c.DrawPolyline(dsm.KindWall, "bad", geom.Pt(0, 0)); err == nil {
		t.Error("single-point polyline accepted")
	}
	if _, err := c.DrawCircle(dsm.KindObstacle, "bad", geom.Pt(0, 0), 0); err == nil {
		t.Error("zero-radius circle accepted")
	}
}

func TestSnapAutoAdjust(t *testing.T) {
	c := NewCanvas(1)
	if _, err := c.DrawRect(dsm.KindHallway, "hall", geom.Pt(0, 0), geom.Pt(10, 10)); err != nil {
		t.Fatal(err)
	}
	// A new polygon with a vertex within snap radius of (10, 10) snaps.
	id, err := c.DrawPolygon(dsm.KindRoom, "room",
		geom.Pt(10.2, 9.9), geom.Pt(20, 10), geom.Pt(20, 20), geom.Pt(10, 20))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := c.Shape(id)
	if !s.Polygon.Vertices[0].Eq(geom.Pt(10, 10)) {
		t.Errorf("vertex not snapped: %v", s.Polygon.Vertices[0])
	}
	// Snapping off.
	c.SnapRadius = 0
	id2, _ := c.DrawPolygon(dsm.KindRoom, "room2",
		geom.Pt(10.2, 9.9), geom.Pt(30, 10), geom.Pt(30, 20))
	s2, _ := c.Shape(id2)
	if s2.Polygon.Vertices[0].Eq(geom.Pt(10, 10)) {
		t.Error("vertex snapped with radius 0")
	}
}

func TestMoveResizeDelete(t *testing.T) {
	c := NewCanvas(1)
	id, _ := c.DrawRect(dsm.KindRoom, "room", geom.Pt(0, 0), geom.Pt(10, 10))
	if err := c.Move(id, geom.Pt(5, 5)); err != nil {
		t.Fatal(err)
	}
	s, _ := c.Shape(id)
	if !s.Polygon.Centroid().Eq(geom.Pt(10, 10)) {
		t.Errorf("moved centroid = %v", s.Polygon.Centroid())
	}
	if err := c.Resize(id, 2); err != nil {
		t.Fatal(err)
	}
	s, _ = c.Shape(id)
	if got := s.Polygon.Area(); got < 399 || got > 401 {
		t.Errorf("resized area = %v, want 400", got)
	}
	// Centroid preserved by resize.
	if !s.Polygon.Centroid().Eq(geom.Pt(10, 10)) {
		t.Errorf("resize moved centroid to %v", s.Polygon.Centroid())
	}
	if err := c.Resize(id, 0); err == nil {
		t.Error("zero scale accepted")
	}
	if err := c.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(id); err == nil {
		t.Error("double delete accepted")
	}
	if err := c.Move(999, geom.Pt(1, 1)); err == nil {
		t.Error("moving missing shape accepted")
	}
}

func TestLayerGroupStyleTag(t *testing.T) {
	c := NewCanvas(1)
	id, _ := c.DrawRect(dsm.KindRoom, "shop", geom.Pt(0, 0), geom.Pt(10, 10))
	if err := c.SetLayer(id, "structure"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetGroup(id, "west-wing"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetStyle(id, "fill", "#ffcc00"); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignTag(id, "Adidas", "shop"); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignTag(id, "", "shop"); err == nil {
		t.Error("empty tag accepted")
	}
	s, _ := c.Shape(id)
	if s.Layer != "structure" || s.Group != "west-wing" || s.Style["fill"] != "#ffcc00" || s.SemanticTag != "Adidas" {
		t.Errorf("attributes = %+v", s)
	}
}

func TestMoveGroup(t *testing.T) {
	c := NewCanvas(1)
	a, _ := c.DrawRect(dsm.KindRoom, "a", geom.Pt(0, 0), geom.Pt(5, 5))
	b, _ := c.DrawRect(dsm.KindRoom, "b", geom.Pt(10, 0), geom.Pt(15, 5))
	c.SetGroup(a, "g")
	c.SetGroup(b, "g")
	other, _ := c.DrawRect(dsm.KindRoom, "other", geom.Pt(20, 0), geom.Pt(25, 5))
	c.MoveGroup("g", geom.Pt(0, 100))
	sa, _ := c.Shape(a)
	sb, _ := c.Shape(b)
	so, _ := c.Shape(other)
	if sa.Polygon.Centroid().Y < 100 || sb.Polygon.Centroid().Y < 100 {
		t.Error("group members not moved")
	}
	if so.Polygon.Centroid().Y > 50 {
		t.Error("non-member moved")
	}
	// Group move is one undoable operation.
	c.Undo()
	sa, _ = c.Shape(a)
	if sa.Polygon.Centroid().Y > 50 {
		t.Error("undo did not revert group move")
	}
}

// buildTestCanvas draws the canonical hall + two shops + doors layout.
func buildTestCanvas(t *testing.T) *Canvas {
	t.Helper()
	c := NewCanvas(1)
	mustDraw := func(id int, err error) int {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	mustDraw(c.DrawRect(dsm.KindHallway, "hall", geom.Pt(0, 0), geom.Pt(20, 8)))
	s1 := mustDraw(c.DrawRect(dsm.KindRoom, "shop-1", geom.Pt(0, 8.4), geom.Pt(10, 16)))
	s2 := mustDraw(c.DrawRect(dsm.KindRoom, "shop-2", geom.Pt(10, 8.4), geom.Pt(20, 16)))
	mustDraw(c.DrawPolyline(dsm.KindWall, "wall", geom.Pt(0, 8.2), geom.Pt(20, 8.2)))
	mustDraw(c.DrawRect(dsm.KindDoor, "d1", geom.Pt(4, 8), geom.Pt(6, 8.4)))
	mustDraw(c.DrawRect(dsm.KindDoor, "d2", geom.Pt(14, 8), geom.Pt(16, 8.4)))
	mustDraw(c.DrawCircle(dsm.KindObstacle, "pillar", geom.Pt(10, 4), 0.5))
	if err := c.AssignTag(s1, "Adidas", "shop"); err != nil {
		t.Fatal(err)
	}
	if err := c.AssignTag(s2, "Nike", "shop"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildDSM(t *testing.T) {
	c := buildTestCanvas(t)
	m, err := Build("drawn-venue", BuildOptions{}, c)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(m.Entities) != 7 {
		t.Errorf("entities = %d", len(m.Entities))
	}
	if len(m.Regions) != 2 {
		t.Errorf("regions = %d", len(m.Regions))
	}
	if m.RegionByTag("Adidas") == nil || m.RegionByTag("Nike") == nil {
		t.Fatal("tagged regions missing")
	}
	// Topology works: Adidas → Nike through the two doors.
	d, ok := m.WalkingDistance(
		dsm.Location{P: geom.Pt(5, 12), Floor: 1},
		dsm.Location{P: geom.Pt(15, 12), Floor: 1},
	)
	if !ok {
		t.Fatal("drawn venue not connected")
	}
	if d <= 10 {
		t.Errorf("walking distance %v should exceed euclidean 10 (wall between)", d)
	}
	// Style/layer metadata lands in entity tags.
	found := false
	for _, e := range m.Entities {
		if e.Kind == dsm.KindObstacle && e.Shape.Area() > 0.5 {
			found = true
		}
	}
	if !found {
		t.Error("polygonized circle obstacle missing")
	}
}

func TestBuildThickensWalls(t *testing.T) {
	c := NewCanvas(1)
	if _, err := c.DrawRect(dsm.KindHallway, "hall", geom.Pt(0, 0), geom.Pt(20, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DrawPolyline(dsm.KindWall, "wall", geom.Pt(0, 4), geom.Pt(20, 4)); err != nil {
		t.Fatal(err)
	}
	m, err := Build("v", BuildOptions{WallWidth: 0.5}, c)
	if err != nil {
		t.Fatal(err)
	}
	var wall *dsm.Entity
	for _, e := range m.Entities {
		if e.Kind == dsm.KindWall {
			wall = e
		}
	}
	if wall == nil {
		t.Fatal("wall entity missing")
	}
	if a := wall.Shape.Area(); a < 9 || a > 11 {
		t.Errorf("thickened wall area = %v, want ≈10", a)
	}
}

// testFloorplanImage paints a 200×120 plan at 0.25 m/px: a bottom corridor
// (y 4..40) and two rooms (y 44..116) split at x=100, with door gaps in the
// dividing wall (y 40..44).
func testFloorplanImage() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, 200, 120))
	// Start all wall.
	for i := range img.Pix {
		img.Pix[i] = 0
	}
	fill := func(x0, y0, x1, y1 int, v uint8) {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				img.SetGray(x, y, color.Gray{Y: v})
			}
		}
	}
	fill(4, 4, 196, 40, 255)     // corridor
	fill(4, 44, 96, 116, 255)    // room 1 (x 4..96)
	fill(104, 44, 196, 116, 255) // room 2 (x 104..196)
	fill(40, 40, 52, 44, 128)    // door 1 in dividing wall
	fill(140, 40, 152, 44, 128)  // door 2
	return img
}

func TestTraceFloorplanImage(t *testing.T) {
	img := testFloorplanImage()
	canvas, err := Trace(img, 1, DefaultTraceOptions())
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	var halls, rooms, doors int
	for _, s := range canvas.Shapes() {
		switch s.EntityKind {
		case dsm.KindHallway:
			halls++
		case dsm.KindRoom:
			rooms++
		case dsm.KindDoor:
			doors++
		}
	}
	if halls != 1 || rooms != 2 || doors != 2 {
		t.Fatalf("traced halls=%d rooms=%d doors=%d, want 1/2/2", halls, rooms, doors)
	}
	// Geometry sanity: the corridor is the largest shape, ≈ 48×9 m.
	var hall Shape
	for _, s := range canvas.Shapes() {
		if s.EntityKind == dsm.KindHallway {
			hall = s
		}
	}
	a := hall.Polygon.Area()
	if a < 380 || a > 450 {
		t.Errorf("corridor area = %v m², want ≈432", a)
	}
	// The traced canvas compiles into a connected DSM.
	m, err := Build("traced", BuildOptions{}, canvas)
	if err != nil {
		t.Fatalf("Build traced: %v", err)
	}
	d, ok := m.WalkingDistance(
		dsm.Location{P: geom.Pt(6, 20), Floor: 1},  // room 1
		dsm.Location{P: geom.Pt(40, 20), Floor: 1}, // room 2
	)
	if !ok {
		t.Fatal("traced venue not connected through doors")
	}
	if d <= 30 {
		t.Errorf("walking distance = %v, want > 30 (via corridor)", d)
	}
}

func TestTraceRejectsDegenerateImages(t *testing.T) {
	if _, err := Trace(image.NewGray(image.Rect(0, 0, 0, 0)), 1, DefaultTraceOptions()); err == nil {
		t.Error("empty image accepted")
	}
	allWall := image.NewGray(image.Rect(0, 0, 10, 10))
	if _, err := Trace(allWall, 1, DefaultTraceOptions()); err == nil {
		t.Error("all-wall image accepted")
	}
}

func TestTraceDropsSpecks(t *testing.T) {
	img := image.NewGray(image.Rect(0, 0, 100, 100))
	fill := func(x0, y0, x1, y1 int, v uint8) {
		for y := y0; y < y1; y++ {
			for x := x0; x < x1; x++ {
				img.SetGray(x, y, color.Gray{Y: v})
			}
		}
	}
	fill(4, 4, 96, 50, 255)   // big room
	fill(70, 70, 72, 72, 255) // 2×2 speck = 0.25 m², below MinRoomArea
	canvas, err := Trace(img, 1, DefaultTraceOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(canvas.Shapes()); got != 1 {
		t.Errorf("shapes = %d, want 1 (speck dropped)", got)
	}
}
