package floorplan

import (
	"fmt"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// BuildOptions control DSM compilation.
type BuildOptions struct {
	// WallWidth thickens polyline walls into polygons (default 0.3 m).
	WallWidth float64
	// CircleSegments polygonizes circles (default 16).
	CircleSegments int
}

// Build compiles one or more floor canvases into a frozen DSM: shapes become
// entities (polylines thickened, circles polygonized) and tagged shapes
// additionally yield semantic regions ("the system reads the drawn indoor
// entities' geometric properties and semantic tags, and computes the
// topological relations").
func Build(name string, opts BuildOptions, canvases ...*Canvas) (*dsm.Model, error) {
	if opts.WallWidth <= 0 {
		opts.WallWidth = 0.3
	}
	if opts.CircleSegments < 3 {
		opts.CircleSegments = 16
	}
	m := dsm.New(name)
	for _, c := range canvases {
		for _, s := range c.shapes {
			pg, err := shapePolygon(s, opts)
			if err != nil {
				return nil, err
			}
			eid := dsm.EntityID(fmt.Sprintf("e%d-%d", c.Floor, s.ID))
			m.AddEntity(&dsm.Entity{
				ID: eid, Kind: s.EntityKind, Name: s.Name, Floor: c.Floor,
				Shape: pg, Tags: styleTags(s),
			})
			if s.SemanticTag != "" {
				m.AddRegion(&dsm.SemanticRegion{
					ID:  dsm.RegionID(fmt.Sprintf("rg%d-%d", c.Floor, s.ID)),
					Tag: s.SemanticTag, Category: s.Category, Floor: c.Floor,
					Shape: pg, Entities: []dsm.EntityID{eid}, Style: s.Style,
				})
			}
		}
	}
	if err := m.Freeze(); err != nil {
		return nil, fmt.Errorf("floorplan: build: %w", err)
	}
	return m, nil
}

func styleTags(s Shape) map[string]string {
	if len(s.Style) == 0 && s.Layer == "" && s.Group == "" {
		return nil
	}
	t := make(map[string]string, len(s.Style)+2)
	for k, v := range s.Style {
		t["style."+k] = v
	}
	if s.Layer != "" {
		t["layer"] = s.Layer
	}
	if s.Group != "" {
		t["group"] = s.Group
	}
	return t
}

func shapePolygon(s Shape, opts BuildOptions) (geom.Polygon, error) {
	switch s.Kind {
	case ShapePolygon:
		return s.Polygon, nil
	case ShapeCircle:
		return geom.Circ(s.Center, s.Radius).ToPolygon(opts.CircleSegments), nil
	case ShapePolyline:
		return thicken(s.Points, opts.WallWidth)
	default:
		return geom.Polygon{}, fmt.Errorf("floorplan: unknown shape kind %q", s.Kind)
	}
}

// thicken converts a polyline into a closed polygon of the given width by
// offsetting perpendicular to each leg — adequate for wall bands, which are
// mostly axis-aligned runs.
func thicken(pl geom.Polyline, width float64) (geom.Polygon, error) {
	pts := pl.Points
	if len(pts) < 2 {
		return geom.Polygon{}, fmt.Errorf("floorplan: cannot thicken %d-point polyline", len(pts))
	}
	h := width / 2
	var left, right []geom.Point
	for i := range pts {
		var dir geom.Point
		switch {
		case i == 0:
			dir = pts[1].Sub(pts[0])
		case i == len(pts)-1:
			dir = pts[i].Sub(pts[i-1])
		default:
			dir = pts[i+1].Sub(pts[i-1])
		}
		n := dir.Norm()
		if n <= geom.Eps {
			dir = geom.Pt(1, 0)
			n = 1
		}
		normal := geom.Pt(-dir.Y/n, dir.X/n)
		left = append(left, pts[i].Add(normal.Scale(h)))
		right = append(right, pts[i].Sub(normal.Scale(h)))
	}
	ring := make([]geom.Point, 0, 2*len(pts))
	ring = append(ring, left...)
	for i := len(right) - 1; i >= 0; i-- {
		ring = append(ring, right[i])
	}
	pg := geom.Polygon{Vertices: ring}
	if err := pg.Validate(); err != nil {
		return geom.Polygon{}, fmt.Errorf("floorplan: thicken: %w", err)
	}
	return pg, nil
}
