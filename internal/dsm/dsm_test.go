package dsm

import (
	"bytes"
	"math"
	"testing"

	"trips/internal/geom"
)

// newTestVenue builds a small two-floor venue:
//
//	floor 1:  hallway H1 along the bottom, rooms R101..R103 above it,
//	          thin doors D101..D103 in the dividing wall, staircase S@1F
//	          opening into the hallway.
//	floor 2:  hallway H2, room R201 with door D201, staircase S@2F.
//
// Regions: Adidas→R101, Nike→R102, Cashier→R103, Hall→H1, Books→R201.
func newTestVenue(t testing.TB) *Model {
	t.Helper()
	m := New("test-venue")

	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.NewRect(geom.Pt(x0, y0), geom.Pt(x1, y1)).ToPolygon()
	}
	add := func(id string, k EntityKind, f FloorID, shape geom.Polygon, name string) {
		m.AddEntity(&Entity{ID: EntityID(id), Kind: k, Name: name, Floor: f, Shape: shape})
	}

	// Floor 1.
	add("H1", KindHallway, 1, rect(0, 0, 40, 10), "Hall 1F")
	add("R101", KindRoom, 1, rect(0, 10.4, 10, 20), "Shop 101")
	add("R102", KindRoom, 1, rect(10, 10.4, 20, 20), "Shop 102")
	add("R103", KindRoom, 1, rect(20, 10.4, 30, 20), "Shop 103")
	add("W1", KindWall, 1, rect(0, 10, 40, 10.4), "dividing wall")
	add("D101", KindDoor, 1, rect(4, 10, 6, 10.4), "door 101")
	add("D102", KindDoor, 1, rect(14, 10, 16, 10.4), "door 102")
	add("D103", KindDoor, 1, rect(24, 10, 26, 10.4), "door 103")
	add("S1F", KindStaircase, 1, rect(35, 0, 40, 5), "Stairs A")

	// Floor 2.
	add("H2", KindHallway, 2, rect(0, 0, 40, 10), "Hall 2F")
	add("R201", KindRoom, 2, rect(0, 10.4, 10, 20), "Shop 201")
	add("D201", KindDoor, 2, rect(4, 10, 6, 10.4), "door 201")
	add("S2F", KindStaircase, 2, rect(35, 0, 40, 5), "Stairs A")

	reg := func(id, tag, cat string, f FloorID, shape geom.Polygon, ents ...EntityID) {
		m.AddRegion(&SemanticRegion{ID: RegionID(id), Tag: tag, Category: cat, Floor: f, Shape: shape, Entities: ents})
	}
	reg("rg-adidas", "Adidas", "shop", 1, rect(0, 10.4, 10, 20), "R101")
	reg("rg-nike", "Nike", "shop", 1, rect(10, 10.4, 20, 20), "R102")
	reg("rg-cashier", "Cashier", "service", 1, rect(20, 10.4, 30, 20), "R103")
	reg("rg-hall", "Center Hall", "hall", 1, rect(0, 0, 40, 10), "H1")
	reg("rg-books", "Books", "shop", 2, rect(0, 10.4, 10, 20), "R201")

	if err := m.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return m
}

func TestFloorIDString(t *testing.T) {
	if got := FloorID(3).String(); got != "3F" {
		t.Errorf("3F = %q", got)
	}
	if got := FloorID(-1).String(); got != "B1" {
		t.Errorf("B1 = %q", got)
	}
}

func TestFreezeValidation(t *testing.T) {
	m := New("bad")
	m.AddEntity(&Entity{ID: "", Kind: KindRoom, Floor: 1,
		Shape: geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)).ToPolygon()})
	if err := m.Freeze(); err == nil {
		t.Error("empty entity ID accepted")
	}

	m = New("dup")
	sq := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1)).ToPolygon()
	m.AddEntity(&Entity{ID: "a", Kind: KindRoom, Floor: 1, Shape: sq})
	m.AddEntity(&Entity{ID: "a", Kind: KindRoom, Floor: 1, Shape: sq})
	if err := m.Freeze(); err == nil {
		t.Error("duplicate entity ID accepted")
	}

	m = New("badkind")
	m.AddEntity(&Entity{ID: "a", Kind: "spaceship", Floor: 1, Shape: sq})
	if err := m.Freeze(); err == nil {
		t.Error("unknown kind accepted")
	}

	m = New("orphan-door")
	m.AddEntity(&Entity{ID: "d", Kind: KindDoor, Floor: 1,
		Shape: geom.NewRect(geom.Pt(100, 100), geom.Pt(101, 101)).ToPolygon()})
	if err := m.Freeze(); err == nil {
		t.Error("door with no adjacent partition accepted")
	}

	m = New("bad-region-ref")
	m.AddEntity(&Entity{ID: "a", Kind: KindRoom, Floor: 1, Shape: sq})
	m.AddRegion(&SemanticRegion{ID: "r", Tag: "X", Floor: 1, Shape: sq, Entities: []EntityID{"nope"}})
	if err := m.Freeze(); err == nil {
		t.Error("region referencing unknown entity accepted")
	}
}

func TestAddAfterFreezePanics(t *testing.T) {
	m := newTestVenue(t)
	defer func() {
		if recover() == nil {
			t.Error("AddEntity after Freeze should panic")
		}
	}()
	m.AddEntity(&Entity{ID: "x"})
}

func TestLookups(t *testing.T) {
	m := newTestVenue(t)
	if e := m.Entity("R101"); e == nil || e.Name != "Shop 101" {
		t.Errorf("Entity lookup = %+v", e)
	}
	if m.Entity("missing") != nil {
		t.Error("missing entity should be nil")
	}
	if r := m.RegionByTag("Nike"); r == nil || r.ID != "rg-nike" {
		t.Errorf("RegionByTag = %+v", r)
	}
	if got := m.Floors(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Floors = %v", got)
	}
	if !m.HasFloor(2) || m.HasFloor(7) {
		t.Error("HasFloor wrong")
	}
	b := m.FloorBounds(1)
	if b.Width() < 39 || b.Height() < 19 {
		t.Errorf("FloorBounds = %v", b)
	}
	if !m.FloorBounds(9).IsEmpty() {
		t.Error("unknown floor bounds should be empty")
	}
}

func TestLocate(t *testing.T) {
	m := newTestVenue(t)
	if e := m.Locate(geom.Pt(5, 15), 1); e == nil || e.ID != "R101" {
		t.Errorf("Locate room = %+v", e)
	}
	if e := m.Locate(geom.Pt(20, 5), 1); e == nil || e.ID != "H1" {
		t.Errorf("Locate hallway = %+v", e)
	}
	// Inside the dividing wall: not walkable.
	if e := m.Locate(geom.Pt(8, 10.2), 1); e != nil && e.Kind == KindWall {
		t.Errorf("Locate wall returned %+v", e)
	}
	// Outside the building.
	if e := m.Locate(geom.Pt(-5, -5), 1); e != nil {
		t.Errorf("Locate outside = %+v", e)
	}
	// Unknown floor.
	if e := m.Locate(geom.Pt(5, 5), 9); e != nil {
		t.Errorf("Locate floor 9 = %+v", e)
	}
	// Staircase is the most specific partition at its own location even if
	// the hallway overlapped it (here they don't overlap, simple check).
	if e := m.Locate(geom.Pt(37, 2), 1); e == nil || e.ID != "S1F" {
		t.Errorf("Locate staircase = %+v", e)
	}
}

func TestSnapToWalkable(t *testing.T) {
	m := newTestVenue(t)
	// Already walkable: unchanged.
	p, e, ok := m.SnapToWalkable(geom.Pt(5, 15), 1)
	if !ok || e.ID != "R101" || !p.Eq(geom.Pt(5, 15)) {
		t.Errorf("snap noop = %v %v %v", p, e, ok)
	}
	// A point just outside the building snaps to the hallway edge.
	p, e, ok = m.SnapToWalkable(geom.Pt(20, -1), 1)
	if !ok || e.ID != "H1" {
		t.Fatalf("snap outside = %v %v %v", p, e, ok)
	}
	if m.Locate(p, 1) == nil {
		t.Errorf("snapped point %v not walkable", p)
	}
	// Unknown floor fails.
	if _, _, ok := m.SnapToWalkable(geom.Pt(0, 0), 42); ok {
		t.Error("snap on unknown floor should fail")
	}
}

func TestRegionAt(t *testing.T) {
	m := newTestVenue(t)
	if r := m.RegionAt(geom.Pt(15, 15), 1); r == nil || r.Tag != "Nike" {
		t.Errorf("RegionAt Nike = %+v", r)
	}
	if r := m.RegionAt(geom.Pt(20, 5), 1); r == nil || r.Tag != "Center Hall" {
		t.Errorf("RegionAt hall = %+v", r)
	}
	if r := m.RegionAt(geom.Pt(5, 15), 2); r == nil || r.Tag != "Books" {
		t.Errorf("RegionAt floor2 = %+v", r)
	}
	if r := m.RegionAt(geom.Pt(-3, -3), 1); r != nil {
		t.Errorf("RegionAt outside = %+v", r)
	}
}

func TestWalkingDistanceSamePartition(t *testing.T) {
	m := newTestVenue(t)
	d, ok := m.WalkingDistance(Location{geom.Pt(2, 2), 1}, Location{geom.Pt(10, 8), 1})
	if !ok {
		t.Fatal("unreachable within hallway")
	}
	if want := math.Hypot(8, 6); !almostEq(d, want) {
		t.Errorf("same-partition distance = %v, want %v", d, want)
	}
}

func TestWalkingDistanceThroughDoors(t *testing.T) {
	m := newTestVenue(t)
	from := Location{geom.Pt(5, 15), 1} // in R101
	to := Location{geom.Pt(15, 15), 1}  // in R102
	d, ok := m.WalkingDistance(from, to)
	if !ok {
		t.Fatal("R101→R102 unreachable")
	}
	euclid := from.P.Dist(to.P)
	if d <= euclid {
		t.Errorf("walking distance %v should exceed euclidean %v (wall between)", d, euclid)
	}
	// Path via D101 (≈5,10.2) and D102 (≈15,10.2): about 5+10+5 = 20.
	if d < 18 || d > 23 {
		t.Errorf("walking distance = %v, want ≈20", d)
	}
}

func TestWalkingDistanceCrossFloor(t *testing.T) {
	m := newTestVenue(t)
	from := Location{geom.Pt(5, 15), 1} // Adidas
	to := Location{geom.Pt(5, 15), 2}   // Books
	d, ok := m.WalkingDistance(from, to)
	if !ok {
		t.Fatal("cross-floor unreachable")
	}
	// Must include the vertical cost of one storey.
	if d < m.FloorHeight*verticalCostFactor {
		t.Errorf("cross-floor distance %v below vertical cost", d)
	}
	// Symmetry.
	d2, ok := m.WalkingDistance(to, from)
	if !ok || !almostEq(d, d2) {
		t.Errorf("asymmetric walking distance: %v vs %v", d, d2)
	}
}

func TestWalkingPath(t *testing.T) {
	m := newTestVenue(t)
	from := Location{geom.Pt(5, 15), 1}
	to := Location{geom.Pt(15, 15), 1}
	path := m.WalkingPath(from, to)
	if len(path) < 4 {
		t.Fatalf("path = %v, want endpoints + 2 doors", path)
	}
	if !path[0].P.Eq(from.P) || !path[len(path)-1].P.Eq(to.P) {
		t.Error("path endpoints wrong")
	}
	// Interior nodes are door centers inside the wall band.
	for _, loc := range path[1 : len(path)-1] {
		if loc.P.Y < 9.5 || loc.P.Y > 10.9 {
			t.Errorf("path node %v not at the wall door band", loc.P)
		}
	}
	// Same-partition path is the straight segment.
	p2 := m.WalkingPath(Location{geom.Pt(1, 1), 1}, Location{geom.Pt(3, 3), 1})
	if len(p2) != 2 {
		t.Errorf("same-partition path = %v", p2)
	}
}

func TestReachable(t *testing.T) {
	m := newTestVenue(t)
	if !m.Reachable(Location{geom.Pt(5, 15), 1}, Location{geom.Pt(5, 15), 2}) {
		t.Error("venue should be fully connected")
	}
	if m.Reachable(Location{geom.Pt(5, 15), 1}, Location{geom.Pt(5, 15), 42}) {
		t.Error("unknown floor should be unreachable")
	}
}

func TestAdjacentRegions(t *testing.T) {
	m := newTestVenue(t)
	adj := m.AdjacentRegions("rg-adidas")
	// Adidas connects to the hall through D101. Not directly to Nike
	// except via geometric touch (they share the x=10 boundary edge).
	foundHall := false
	for _, id := range adj {
		if id == "rg-hall" {
			foundHall = true
		}
	}
	if !foundHall {
		t.Errorf("Adidas adjacency %v misses the hall", adj)
	}
	// Region adjacency is symmetric.
	for _, id := range adj {
		back := m.AdjacentRegions(id)
		ok := false
		for _, b := range back {
			if b == "rg-adidas" {
				ok = true
			}
		}
		if !ok {
			t.Errorf("adjacency not symmetric for %s", id)
		}
	}
}

func TestRegionDistance(t *testing.T) {
	m := newTestVenue(t)
	d, ok := m.RegionDistance("rg-adidas", "rg-nike")
	if !ok || d <= 0 {
		t.Errorf("RegionDistance = %v,%v", d, ok)
	}
	if _, ok := m.RegionDistance("rg-adidas", "missing"); ok {
		t.Error("distance to missing region should fail")
	}
}

func TestDerivedRegionEntities(t *testing.T) {
	// A region without an explicit entity list picks up entities whose
	// centroid it covers.
	m := New("derive")
	sq := geom.NewRect(geom.Pt(0, 0), geom.Pt(10, 10)).ToPolygon()
	m.AddEntity(&Entity{ID: "room", Kind: KindRoom, Floor: 1, Shape: sq})
	m.AddRegion(&SemanticRegion{ID: "r", Tag: "X", Floor: 1,
		Shape: geom.NewRect(geom.Pt(-1, -1), geom.Pt(11, 11)).ToPolygon()})
	if err := m.Freeze(); err != nil {
		t.Fatal(err)
	}
	r := m.Region("r")
	if len(r.Entities) != 1 || r.Entities[0] != "room" {
		t.Errorf("derived entities = %v", r.Entities)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := newTestVenue(t)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if m2.Name != m.Name || len(m2.Entities) != len(m.Entities) || len(m2.Regions) != len(m.Regions) {
		t.Errorf("round trip mismatch: %s %d %d", m2.Name, len(m2.Entities), len(m2.Regions))
	}
	// The reloaded model answers the same queries.
	d1, _ := m.WalkingDistance(Location{geom.Pt(5, 15), 1}, Location{geom.Pt(15, 15), 1})
	d2, ok := m2.WalkingDistance(Location{geom.Pt(5, 15), 1}, Location{geom.Pt(15, 15), 1})
	if !ok || !almostEq(d1, d2) {
		t.Errorf("reloaded distance %v vs %v", d2, d1)
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := newTestVenue(t)
	path := t.TempDir() + "/venue.json"
	if err := m.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if m2.Name != "test-venue" {
		t.Errorf("loaded name = %q", m2.Name)
	}
	if _, err := Load(t.TempDir() + "/missing.json"); err == nil {
		t.Error("loading missing file should fail")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("{not json")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }
