package dsm

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"trips/internal/geom"
)

// The navigation graph ("door graph") realizes the minimum indoor walking
// distance of paper ref. [13]: people move between walkable partitions only
// through doors and change floors only through staircases/elevators. Nodes
// are connector entities (doors and vertical shafts); two nodes are linked
// when they touch a common partition, weighted by the Euclidean distance
// between their centers within that partition; shaft nodes on adjacent
// floors link vertically at a cost derived from the floor height.

type navNode struct {
	entity *Entity
	center geom.Point
	floor  FloorID
}

type navEdge struct {
	to int
	w  float64
}

type navGraph struct {
	nodes []navNode
	adj   [][]navEdge
	// byPartition lists node indexes touching each walkable partition.
	byPartition map[EntityID][]int
}

// doorTouchSlack is how far a door polygon may be from a partition polygon
// and still be considered connected to it (door frames are drawn inside
// walls, which are typically 0.2–0.4 m thick).
const doorTouchSlack = 0.5

// verticalCostFactor converts a storey height into an equivalent horizontal
// walking distance (stairs are slower than level walking).
const verticalCostFactor = 3.0

func (m *Model) buildNavGraph() error {
	g := &navGraph{byPartition: make(map[EntityID][]int)}

	// Collect connector nodes: doors and vertical shafts.
	shaftByGroup := make(map[string][]int) // vertical group -> node indexes
	for _, e := range m.Entities {
		switch {
		case e.Kind == KindDoor:
			idx := len(g.nodes)
			g.nodes = append(g.nodes, navNode{e, e.Center(), e.Floor})
			parts := m.doorPartitions(e)
			if len(parts) == 0 {
				return fmt.Errorf("dsm: door %s connects no walkable partition", e.ID)
			}
			for _, p := range parts {
				g.byPartition[p.ID] = append(g.byPartition[p.ID], idx)
			}
		case e.Kind.Vertical():
			idx := len(g.nodes)
			g.nodes = append(g.nodes, navNode{e, e.Center(), e.Floor})
			// A shaft is itself walkable, so it belongs to its own
			// partition, and to any partition it touches (entry landing).
			g.byPartition[e.ID] = append(g.byPartition[e.ID], idx)
			for _, p := range m.touchingPartitions(e) {
				g.byPartition[p.ID] = append(g.byPartition[p.ID], idx)
			}
			shaftByGroup[e.verticalGroup()] = append(shaftByGroup[e.verticalGroup()], idx)
		}
	}

	g.adj = make([][]navEdge, len(g.nodes))

	// Intra-partition edges: all connector nodes sharing a partition.
	// Partitions are visited in sorted order so adjacency lists are built
	// identically across runs: edge order breaks ties between equal-cost
	// paths, which must not depend on map iteration.
	partIDs := make([]EntityID, 0, len(g.byPartition))
	//trips:commutative key collection; iteration order is erased by the sort below
	for p := range g.byPartition {
		partIDs = append(partIDs, p)
	}
	sort.Slice(partIDs, func(i, j int) bool { return partIDs[i] < partIDs[j] })
	for _, p := range partIDs {
		idxs := g.byPartition[p]
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				a, b := idxs[i], idxs[j]
				w := g.nodes[a].center.Dist(g.nodes[b].center)
				if w < 0.1 {
					w = 0.1 // distinct doors are never free to travel between
				}
				g.adj[a] = append(g.adj[a], navEdge{b, w})
				g.adj[b] = append(g.adj[b], navEdge{a, w})
			}
		}
	}

	// Vertical edges between shafts of the same group on adjacent floors,
	// again in sorted group order for deterministic edge lists.
	groups := make([]string, 0, len(shaftByGroup))
	//trips:commutative key collection; iteration order is erased by the sort below
	for gr := range shaftByGroup {
		groups = append(groups, gr)
	}
	sort.Strings(groups)
	for _, gr := range groups {
		idxs := shaftByGroup[gr]
		sort.Slice(idxs, func(i, j int) bool {
			return g.nodes[idxs[i]].floor < g.nodes[idxs[j]].floor
		})
		for i := 1; i < len(idxs); i++ {
			a, b := idxs[i-1], idxs[i]
			df := float64(g.nodes[b].floor - g.nodes[a].floor)
			w := math.Abs(df) * m.FloorHeight * verticalCostFactor
			g.adj[a] = append(g.adj[a], navEdge{b, w})
			g.adj[b] = append(g.adj[b], navEdge{a, w})
		}
	}

	m.nav = g
	return nil
}

// doorPartitions resolves the partitions a door connects: the explicit
// Connects list when present, otherwise every walkable partition within
// doorTouchSlack of the door shape on its floor.
func (m *Model) doorPartitions(door *Entity) []*Entity {
	if len(door.Connects) > 0 {
		out := make([]*Entity, 0, len(door.Connects))
		for _, id := range door.Connects {
			if e := m.byID[id]; e != nil && e.Kind.Walkable() {
				out = append(out, e)
			}
		}
		return out
	}
	return m.touchingPartitions(door)
}

// touchingPartitions returns walkable partitions whose shape comes within
// doorTouchSlack of e's shape, excluding e itself.
func (m *Model) touchingPartitions(e *Entity) []*Entity {
	fi := m.floors[e.Floor]
	if fi == nil {
		return nil
	}
	var out []*Entity
	query := e.Shape.Bounds().Expand(doorTouchSlack)
	for _, i := range fi.partGrid.QueryRect(query) {
		p := fi.partitions[i]
		if p.ID == e.ID {
			continue
		}
		if polygonsTouch(e.Shape, p.Shape, doorTouchSlack) {
			out = append(out, p)
		}
	}
	return out
}

// polygonsTouch reports whether two polygons come within slack of each other.
func polygonsTouch(a, b geom.Polygon, slack float64) bool {
	for _, v := range a.Vertices {
		if b.DistToPoint(v) <= slack {
			return true
		}
	}
	for _, v := range b.Vertices {
		if a.DistToPoint(v) <= slack {
			return true
		}
	}
	for _, ea := range a.Edges() {
		for _, eb := range b.Edges() {
			if ea.DistToSegment(eb) <= slack {
				return true
			}
		}
	}
	return false
}

// Location pins a point to a floor; the unit of indoor positioning.
type Location struct {
	P     geom.Point
	Floor FloorID
}

// WalkingDistance returns the minimum indoor walking distance between two
// locations, respecting doors, walls and floors. Points outside walkable
// space are snapped to the nearest partition first. The boolean is false
// when no path exists (disconnected partitions or unknown floor).
func (m *Model) WalkingDistance(from, to Location) (float64, bool) {
	pa, ea, oka := m.SnapToWalkable(from.P, from.Floor)
	pb, eb, okb := m.SnapToWalkable(to.P, to.Floor)
	if !oka || !okb {
		return 0, false
	}
	if ea.ID == eb.ID {
		return pa.Dist(pb), true
	}
	g := m.nav
	// Virtual source = pa connected to every connector of ea; likewise the
	// target. Dijkstra from the source set.
	dist := make([]float64, len(g.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	pq := &distHeap{}
	for _, idx := range g.byPartition[ea.ID] {
		d := pa.Dist(g.nodes[idx].center)
		if d < dist[idx] {
			dist[idx] = d
			heap.Push(pq, distItem{idx, d})
		}
	}
	targets := make(map[int]float64)
	for _, idx := range g.byPartition[eb.ID] {
		targets[idx] = pb.Dist(g.nodes[idx].center)
	}
	if pq.Len() == 0 || len(targets) == 0 {
		return 0, false
	}
	best := math.Inf(1)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		if it.d >= best {
			break
		}
		if tail, ok := targets[it.node]; ok {
			if v := it.d + tail; v < best {
				best = v
			}
		}
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, distItem{e.to, nd})
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// WalkingPath returns the sequence of connector points (door and shaft
// centers) on a minimum walking path between the two locations, including
// the snapped endpoints, or nil when unreachable. The Cleaner interpolates
// repaired locations along this path.
func (m *Model) WalkingPath(from, to Location) []Location {
	pa, ea, oka := m.SnapToWalkable(from.P, from.Floor)
	pb, eb, okb := m.SnapToWalkable(to.P, to.Floor)
	if !oka || !okb {
		return nil
	}
	if ea.ID == eb.ID {
		return []Location{{pa, from.Floor}, {pb, to.Floor}}
	}
	g := m.nav
	dist := make([]float64, len(g.nodes))
	prev := make([]int, len(g.nodes))
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	pq := &distHeap{}
	for _, idx := range g.byPartition[ea.ID] {
		d := pa.Dist(g.nodes[idx].center)
		if d < dist[idx] {
			dist[idx] = d
			heap.Push(pq, distItem{idx, d})
		}
	}
	targets := make(map[int]float64)
	for _, idx := range g.byPartition[eb.ID] {
		targets[idx] = pb.Dist(g.nodes[idx].center)
	}
	bestNode, best := -1, math.Inf(1)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.node] {
			continue
		}
		if it.d >= best {
			break
		}
		if tail, ok := targets[it.node]; ok {
			if v := it.d + tail; v < best {
				best, bestNode = v, it.node
			}
		}
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = it.node
				heap.Push(pq, distItem{e.to, nd})
			}
		}
	}
	if bestNode < 0 {
		return nil
	}
	var rev []Location
	for n := bestNode; n >= 0; n = prev[n] {
		rev = append(rev, Location{g.nodes[n].center, g.nodes[n].floor})
	}
	path := make([]Location, 0, len(rev)+2)
	path = append(path, Location{pa, from.Floor})
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	path = append(path, Location{pb, to.Floor})
	return path
}

// Reachable reports whether any walking path connects the two locations.
func (m *Model) Reachable(from, to Location) bool {
	_, ok := m.WalkingDistance(from, to)
	return ok
}

// buildRegionAdjacency derives the semantic-region connectivity: two regions
// are adjacent when a partition of one is a partition of the other, when a
// door directly joins partitions of the two, or when both cover the same
// vertical shaft group. Mere geometric contact does NOT make regions
// adjacent: two shops sharing a wall are not mutually reachable without
// passing whatever joins their doors, and the Complementor's inference
// paths must respect that.
func (m *Model) buildRegionAdjacency() {
	m.regAdj = make(map[RegionID][]RegionID, len(m.Regions))
	// partition -> regions covering it
	cover := make(map[EntityID][]RegionID)
	for _, r := range m.Regions {
		for _, eid := range r.Entities {
			cover[eid] = append(cover[eid], r.ID)
		}
	}
	addPair := func(a, b RegionID) {
		if a == b {
			return
		}
		for _, x := range m.regAdj[a] {
			if x == b {
				return
			}
		}
		m.regAdj[a] = append(m.regAdj[a], b)
		m.regAdj[b] = append(m.regAdj[b], a)
	}
	// Shared partitions.
	//trips:commutative addPair dedupes and regAdj is sorted after construction
	for _, regs := range cover {
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				addPair(regs[i], regs[j])
			}
		}
	}
	// Door-joined partitions.
	for _, e := range m.Entities {
		if e.Kind != KindDoor {
			continue
		}
		parts := m.doorPartitions(e)
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				for _, ra := range cover[parts[i].ID] {
					for _, rb := range cover[parts[j].ID] {
						addPair(ra, rb)
					}
				}
			}
		}
	}
	// Shared vertical shafts across floors.
	shaftRegions := make(map[string][]RegionID)
	for _, e := range m.Entities {
		if !e.Kind.Vertical() {
			continue
		}
		for _, rid := range cover[e.ID] {
			shaftRegions[e.verticalGroup()] = append(shaftRegions[e.verticalGroup()], rid)
		}
	}
	//trips:commutative addPair dedupes and regAdj is sorted after construction
	for _, regs := range shaftRegions {
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				addPair(regs[i], regs[j])
			}
		}
	}
	// Deterministic neighbor order.
	//trips:commutative in-place sort of each adjacency list; key visit order is irrelevant
	for id := range m.regAdj {
		sort.Slice(m.regAdj[id], func(i, j int) bool { return m.regAdj[id][i] < m.regAdj[id][j] })
	}
}

// RegionDistance returns the walking distance between the centers of two
// regions, or false when unreachable. The Complementor prices candidate
// paths with it.
func (m *Model) RegionDistance(a, b RegionID) (float64, bool) {
	ra, rb := m.regByID[a], m.regByID[b]
	if ra == nil || rb == nil {
		return 0, false
	}
	return m.WalkingDistance(Location{ra.Center(), ra.Floor}, Location{rb.Center(), rb.Floor})
}

// distHeap is a binary min-heap for Dijkstra.
type distItem struct {
	node int
	d    float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
