package dsm

import (
	"fmt"
	"math"
	"sort"

	"trips/internal/geom"
)

// The navigation graph ("door graph") realizes the minimum indoor walking
// distance of paper ref. [13]: people move between walkable partitions only
// through doors and change floors only through staircases/elevators. Nodes
// are connector entities (doors and vertical shafts); two nodes are linked
// when they touch a common partition, weighted by the Euclidean distance
// between their centers within that partition; shaft nodes on adjacent
// floors link vertically at a cost derived from the floor height.

type navNode struct {
	entity *Entity
	center geom.Point
	floor  FloorID
}

type navEdge struct {
	to int
	w  float64
}

type navGraph struct {
	nodes []navNode
	adj   [][]navEdge
	// byPartition lists node indexes touching each walkable partition.
	byPartition map[EntityID][]int
	// byPartIdx is byPartition re-keyed by the dense entity index Freeze
	// assigns, so the Dijkstra hot path indexes an array instead of
	// hashing an EntityID string.
	byPartIdx [][]int
}

// doorTouchSlack is how far a door polygon may be from a partition polygon
// and still be considered connected to it (door frames are drawn inside
// walls, which are typically 0.2–0.4 m thick).
const doorTouchSlack = 0.5

// verticalCostFactor converts a storey height into an equivalent horizontal
// walking distance (stairs are slower than level walking).
const verticalCostFactor = 3.0

func (m *Model) buildNavGraph() error {
	g := &navGraph{byPartition: make(map[EntityID][]int)}

	// Collect connector nodes: doors and vertical shafts.
	shaftByGroup := make(map[string][]int) // vertical group -> node indexes
	for _, e := range m.Entities {
		switch {
		case e.Kind == KindDoor:
			idx := len(g.nodes)
			g.nodes = append(g.nodes, navNode{e, e.Center(), e.Floor})
			parts := m.doorPartitions(e)
			if len(parts) == 0 {
				return fmt.Errorf("dsm: door %s connects no walkable partition", e.ID)
			}
			for _, p := range parts {
				g.byPartition[p.ID] = append(g.byPartition[p.ID], idx)
			}
		case e.Kind.Vertical():
			idx := len(g.nodes)
			g.nodes = append(g.nodes, navNode{e, e.Center(), e.Floor})
			// A shaft is itself walkable, so it belongs to its own
			// partition, and to any partition it touches (entry landing).
			g.byPartition[e.ID] = append(g.byPartition[e.ID], idx)
			for _, p := range m.touchingPartitions(e) {
				g.byPartition[p.ID] = append(g.byPartition[p.ID], idx)
			}
			shaftByGroup[e.verticalGroup()] = append(shaftByGroup[e.verticalGroup()], idx)
		}
	}

	g.adj = make([][]navEdge, len(g.nodes))

	// Intra-partition edges: all connector nodes sharing a partition.
	// Partitions are visited in sorted order so adjacency lists are built
	// identically across runs: edge order breaks ties between equal-cost
	// paths, which must not depend on map iteration.
	partIDs := make([]EntityID, 0, len(g.byPartition))
	//trips:commutative key collection; iteration order is erased by the sort below
	for p := range g.byPartition {
		partIDs = append(partIDs, p)
	}
	sort.Slice(partIDs, func(i, j int) bool { return partIDs[i] < partIDs[j] })
	for _, p := range partIDs {
		idxs := g.byPartition[p]
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				a, b := idxs[i], idxs[j]
				w := g.nodes[a].center.Dist(g.nodes[b].center)
				if w < 0.1 {
					w = 0.1 // distinct doors are never free to travel between
				}
				g.adj[a] = append(g.adj[a], navEdge{b, w})
				g.adj[b] = append(g.adj[b], navEdge{a, w})
			}
		}
	}

	// Vertical edges between shafts of the same group on adjacent floors,
	// again in sorted group order for deterministic edge lists.
	groups := make([]string, 0, len(shaftByGroup))
	//trips:commutative key collection; iteration order is erased by the sort below
	for gr := range shaftByGroup {
		groups = append(groups, gr)
	}
	sort.Strings(groups)
	for _, gr := range groups {
		idxs := shaftByGroup[gr]
		sort.Slice(idxs, func(i, j int) bool {
			return g.nodes[idxs[i]].floor < g.nodes[idxs[j]].floor
		})
		for i := 1; i < len(idxs); i++ {
			a, b := idxs[i-1], idxs[i]
			df := float64(g.nodes[b].floor - g.nodes[a].floor)
			w := math.Abs(df) * m.FloorHeight * verticalCostFactor
			g.adj[a] = append(g.adj[a], navEdge{b, w})
			g.adj[b] = append(g.adj[b], navEdge{a, w})
		}
	}

	// Dense per-entity node lists for the hot path.
	g.byPartIdx = make([][]int, len(m.Entities))
	//trips:commutative per-key copy into a dense array; each key writes only its own slot
	for id, list := range g.byPartition {
		g.byPartIdx[m.byID[id].idx] = list
	}

	m.nav = g
	return nil
}

// doorPartitions resolves the partitions a door connects: the explicit
// Connects list when present, otherwise every walkable partition within
// doorTouchSlack of the door shape on its floor.
func (m *Model) doorPartitions(door *Entity) []*Entity {
	if len(door.Connects) > 0 {
		out := make([]*Entity, 0, len(door.Connects))
		for _, id := range door.Connects {
			if e := m.byID[id]; e != nil && e.Kind.Walkable() {
				out = append(out, e)
			}
		}
		return out
	}
	return m.touchingPartitions(door)
}

// touchingPartitions returns walkable partitions whose shape comes within
// doorTouchSlack of e's shape, excluding e itself.
func (m *Model) touchingPartitions(e *Entity) []*Entity {
	fi := m.floors[e.Floor]
	if fi == nil {
		return nil
	}
	var out []*Entity
	query := e.Shape.Bounds().Expand(doorTouchSlack)
	for _, i := range fi.partGrid.QueryRect(query) {
		p := fi.partitions[i]
		if p.ID == e.ID {
			continue
		}
		if polygonsTouch(e.Shape, p.Shape, doorTouchSlack) {
			out = append(out, p)
		}
	}
	return out
}

// polygonsTouch reports whether two polygons come within slack of each other.
func polygonsTouch(a, b geom.Polygon, slack float64) bool {
	for _, v := range a.Vertices {
		if b.DistToPoint(v) <= slack {
			return true
		}
	}
	for _, v := range b.Vertices {
		if a.DistToPoint(v) <= slack {
			return true
		}
	}
	for _, ea := range a.Edges() {
		for _, eb := range b.Edges() {
			if ea.DistToSegment(eb) <= slack {
				return true
			}
		}
	}
	return false
}

// Location pins a point to a floor; the unit of indoor positioning.
type Location struct {
	P     geom.Point
	Floor FloorID
}

// WalkingDistance returns the minimum indoor walking distance between two
// locations, respecting doors, walls and floors. Points outside walkable
// space are snapped to the nearest partition first. The boolean is false
// when no path exists (disconnected partitions or unknown floor).
//
// The Dijkstra working state is pooled (see dijkstraScratch), the heap is
// typed, and partitions are addressed by dense entity index, so a call is
// allocation-free at steady state — the Cleaner runs one per speed check.
//
//trips:zeroalloc
func (m *Model) WalkingDistance(from, to Location) (float64, bool) {
	pa, ea, oka := m.SnapToWalkable(from.P, from.Floor)
	pb, eb, okb := m.SnapToWalkable(to.P, to.Floor)
	if !oka || !okb {
		return 0, false
	}
	if ea.idx == eb.idx {
		return pa.Dist(pb), true
	}
	g := m.nav
	sources, targets := g.byPartIdx[ea.idx], g.byPartIdx[eb.idx]
	if len(sources) == 0 || len(targets) == 0 {
		return 0, false
	}
	s := m.getNavScratch()
	defer m.putNavScratch(s)
	// Virtual source = pa connected to every connector of ea; likewise the
	// target. Dijkstra from the source set.
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
	}
	for _, idx := range sources {
		d := pa.Dist(g.nodes[idx].center)
		if d < s.dist[idx] {
			s.dist[idx] = d
			s.push(distItem{idx, d})
		}
	}
	best := math.Inf(1)
	for len(s.heap) > 0 {
		it := s.pop()
		if it.d > s.dist[it.node] {
			continue
		}
		if it.d >= best {
			break
		}
		if tail, ok := targetTail(g, targets, pb, it.node); ok {
			if v := it.d + tail; v < best {
				best = v
			}
		}
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < s.dist[e.to] {
				s.dist[e.to] = nd
				s.push(distItem{e.to, nd})
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// targetTail returns the virtual-target tail distance from node to pb when
// node is one of the target partition's connectors. The target lists are a
// handful of doors, so a linear scan beats building a map per call.
//
//trips:zeroalloc
func targetTail(g *navGraph, targets []int, pb geom.Point, node int) (float64, bool) {
	for _, t := range targets {
		if t == node {
			return pb.Dist(g.nodes[t].center), true
		}
	}
	return 0, false
}

// WalkingPath returns the sequence of connector points (door and shaft
// centers) on a minimum walking path between the two locations, including
// the snapped endpoints, or nil when unreachable. The Cleaner interpolates
// repaired locations along this path.
func (m *Model) WalkingPath(from, to Location) []Location {
	out, ok := m.AppendWalkingPath(nil, from, to)
	if !ok {
		return nil
	}
	return out
}

// AppendWalkingPath appends a minimum walking path to dst and reports
// whether one exists; on false, dst is returned unchanged. It is
// WalkingPath for callers that reuse a path buffer across calls (the
// Cleaner's interpolation scratch): aside from growing dst, a call is
// allocation-free at steady state.
func (m *Model) AppendWalkingPath(dst []Location, from, to Location) ([]Location, bool) {
	pa, ea, oka := m.SnapToWalkable(from.P, from.Floor)
	pb, eb, okb := m.SnapToWalkable(to.P, to.Floor)
	if !oka || !okb {
		return dst, false
	}
	if ea.idx == eb.idx {
		return append(dst, Location{pa, from.Floor}, Location{pb, to.Floor}), true
	}
	g := m.nav
	s := m.getNavScratch()
	defer m.putNavScratch(s)
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.prev[i] = -1
	}
	for _, idx := range g.byPartIdx[ea.idx] {
		d := pa.Dist(g.nodes[idx].center)
		if d < s.dist[idx] {
			s.dist[idx] = d
			s.push(distItem{idx, d})
		}
	}
	targets := g.byPartIdx[eb.idx]
	bestNode, best := -1, math.Inf(1)
	for len(s.heap) > 0 {
		it := s.pop()
		if it.d > s.dist[it.node] {
			continue
		}
		if it.d >= best {
			break
		}
		if tail, ok := targetTail(g, targets, pb, it.node); ok {
			if v := it.d + tail; v < best {
				best, bestNode = v, it.node
			}
		}
		for _, e := range g.adj[it.node] {
			if nd := it.d + e.w; nd < s.dist[e.to] {
				s.dist[e.to] = nd
				s.prev[e.to] = it.node
				s.push(distItem{e.to, nd})
			}
		}
	}
	if bestNode < 0 {
		return dst, false
	}
	s.rev = s.rev[:0]
	for n := bestNode; n >= 0; n = s.prev[n] {
		s.rev = append(s.rev, Location{g.nodes[n].center, g.nodes[n].floor})
	}
	dst = append(dst, Location{pa, from.Floor})
	for i := len(s.rev) - 1; i >= 0; i-- {
		dst = append(dst, s.rev[i])
	}
	return append(dst, Location{pb, to.Floor}), true
}

// Reachable reports whether any walking path connects the two locations.
func (m *Model) Reachable(from, to Location) bool {
	_, ok := m.WalkingDistance(from, to)
	return ok
}

// buildRegionAdjacency derives the semantic-region connectivity: two regions
// are adjacent when a partition of one is a partition of the other, when a
// door directly joins partitions of the two, or when both cover the same
// vertical shaft group. Mere geometric contact does NOT make regions
// adjacent: two shops sharing a wall are not mutually reachable without
// passing whatever joins their doors, and the Complementor's inference
// paths must respect that.
func (m *Model) buildRegionAdjacency() {
	m.regAdj = make(map[RegionID][]RegionID, len(m.Regions))
	// partition -> regions covering it
	cover := make(map[EntityID][]RegionID)
	for _, r := range m.Regions {
		for _, eid := range r.Entities {
			cover[eid] = append(cover[eid], r.ID)
		}
	}
	addPair := func(a, b RegionID) {
		if a == b {
			return
		}
		for _, x := range m.regAdj[a] {
			if x == b {
				return
			}
		}
		m.regAdj[a] = append(m.regAdj[a], b)
		m.regAdj[b] = append(m.regAdj[b], a)
	}
	// Shared partitions.
	//trips:commutative addPair dedupes and regAdj is sorted after construction
	for _, regs := range cover {
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				addPair(regs[i], regs[j])
			}
		}
	}
	// Door-joined partitions.
	for _, e := range m.Entities {
		if e.Kind != KindDoor {
			continue
		}
		parts := m.doorPartitions(e)
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				for _, ra := range cover[parts[i].ID] {
					for _, rb := range cover[parts[j].ID] {
						addPair(ra, rb)
					}
				}
			}
		}
	}
	// Shared vertical shafts across floors.
	shaftRegions := make(map[string][]RegionID)
	for _, e := range m.Entities {
		if !e.Kind.Vertical() {
			continue
		}
		for _, rid := range cover[e.ID] {
			shaftRegions[e.verticalGroup()] = append(shaftRegions[e.verticalGroup()], rid)
		}
	}
	//trips:commutative addPair dedupes and regAdj is sorted after construction
	for _, regs := range shaftRegions {
		for i := 0; i < len(regs); i++ {
			for j := i + 1; j < len(regs); j++ {
				addPair(regs[i], regs[j])
			}
		}
	}
	// Deterministic neighbor order.
	//trips:commutative in-place sort of each adjacency list; key visit order is irrelevant
	for id := range m.regAdj {
		sort.Slice(m.regAdj[id], func(i, j int) bool { return m.regAdj[id][i] < m.regAdj[id][j] })
	}
}

// RegionDistance returns the walking distance between the centers of two
// regions, or false when unreachable. The Complementor prices candidate
// paths with it.
func (m *Model) RegionDistance(a, b RegionID) (float64, bool) {
	ra, rb := m.regByID[a], m.regByID[b]
	if ra == nil || rb == nil {
		return 0, false
	}
	return m.WalkingDistance(Location{ra.Center(), ra.Floor}, Location{rb.Center(), rb.Floor})
}

// distItem is one Dijkstra frontier entry.
type distItem struct {
	node int
	d    float64
}

// dijkstraScratch is the pooled per-call working state of the walking
// queries: the tentative-distance and predecessor arrays, the frontier
// heap, and the path-reversal buffer. Pooling it (Model.navScratch) and
// typing the heap removes every per-call allocation the old
// container/heap-based implementation made — previously ~45% of all
// objects allocated on the online hot path.
type dijkstraScratch struct {
	dist []float64
	prev []int
	heap []distItem
	rev  []Location
}

// push adds an item to the frontier min-heap. The sift-up replicates
// container/heap.Push exactly — WalkingPath's choice among equal-cost
// paths depends on heap tie behavior, which must not change.
func (s *dijkstraScratch) push(it distItem) {
	h := append(s.heap, it)
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if h[i].d <= h[j].d {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	s.heap = h
}

// pop removes the minimum item, replicating container/heap.Pop's
// swap-then-sift-down order (see push for why the semantics are pinned).
func (s *dijkstraScratch) pop() distItem {
	h := s.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].d < h[j1].d {
			j = j2
		}
		if h[j].d >= h[i].d {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	s.heap = h[:n]
	return it
}

// getNavScratch returns pooled Dijkstra scratch sized for the nav graph.
func (m *Model) getNavScratch() *dijkstraScratch {
	s, _ := m.navScratch.Get().(*dijkstraScratch)
	if s == nil {
		s = new(dijkstraScratch)
	}
	if n := len(m.nav.nodes); cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.prev = make([]int, n)
	} else {
		s.dist = s.dist[:n]
		s.prev = s.prev[:n]
	}
	s.heap = s.heap[:0]
	return s
}

// putNavScratch returns scratch to the pool.
func (m *Model) putNavScratch(s *dijkstraScratch) {
	s.heap = s.heap[:0]
	s.rev = s.rev[:0]
	m.navScratch.Put(s)
}
