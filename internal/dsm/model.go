package dsm

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"trips/internal/geom"
	"trips/internal/intern"
)

// Model is the Digital Space Model: entities, semantic regions and the
// derived topology for a whole venue. Build one with New / AddEntity /
// AddRegion and call Freeze before querying; Freeze computes the spatial
// indexes, the door-connectivity graph and the region adjacency that the
// Cleaner, Annotator and Complementor rely on.
//
// A frozen Model is immutable and safe for concurrent readers.
type Model struct {
	// Name labels the venue, e.g. "hangzhou-mall".
	Name string `json:"name"`
	// FloorHeight is the vertical distance between floors in meters; it
	// prices floor changes in the walking distance.
	FloorHeight float64 `json:"floorHeight"`

	Entities []*Entity         `json:"entities"`
	Regions  []*SemanticRegion `json:"regions"`

	// Derived state (not serialized; rebuilt by Freeze).
	frozen    bool
	byID      map[EntityID]*Entity
	regByID   map[RegionID]*SemanticRegion
	regByTag  map[string]*SemanticRegion
	floors    map[FloorID]*floorIndex
	floorList []FloorID
	nav       *navGraph
	regAdj    map[RegionID][]RegionID

	// regIDs interns region ids into dense indexes, assigned in sorted
	// RegionID order so integer comparison reproduces the lexicographic
	// tie-breaks the annotator's voting rules are specified in (intern.None
	// plays the role of the empty "no region" id, sorting below all).
	regIDs   *intern.Table
	regByIdx []*SemanticRegion

	// navScratch pools Dijkstra working state (see topology.go) so
	// WalkingDistance/WalkingPath are allocation-free at steady state.
	navScratch sync.Pool
}

// floorIndex is the per-floor spatial index over walkable partitions and
// regions.
type floorIndex struct {
	bounds     geom.Rect
	partitions []*Entity // walkable entities on this floor
	partGrid   *geom.GridIndex
	regions    []*SemanticRegion
	regGrid    *geom.GridIndex
}

// New creates an empty model with the given venue name and a default floor
// height of 4.5 m (typical mall storey).
func New(name string) *Model {
	return &Model{Name: name, FloorHeight: 4.5}
}

// AddEntity appends an entity. It panics when called after Freeze, which
// would silently desynchronize the derived indexes.
func (m *Model) AddEntity(e *Entity) {
	if m.frozen {
		panic("dsm: AddEntity after Freeze")
	}
	m.Entities = append(m.Entities, e)
}

// AddRegion appends a semantic region. It panics when called after Freeze.
func (m *Model) AddRegion(r *SemanticRegion) {
	if m.frozen {
		panic("dsm: AddRegion after Freeze")
	}
	m.Regions = append(m.Regions, r)
}

// Freeze validates the model, resolves the entity↔region mapping, builds the
// per-floor spatial indexes, the navigation graph and the region adjacency.
// A model must be frozen before any query method is used.
func (m *Model) Freeze() error {
	if m.frozen {
		return nil
	}
	if m.FloorHeight <= 0 {
		m.FloorHeight = 4.5
	}
	m.byID = make(map[EntityID]*Entity, len(m.Entities))
	for _, e := range m.Entities {
		if err := e.Validate(); err != nil {
			return err
		}
		if _, dup := m.byID[e.ID]; dup {
			return fmt.Errorf("dsm: duplicate entity ID %q", e.ID)
		}
		m.byID[e.ID] = e
	}
	m.regByID = make(map[RegionID]*SemanticRegion, len(m.Regions))
	m.regByTag = make(map[string]*SemanticRegion, len(m.Regions))
	for _, r := range m.Regions {
		if err := r.Validate(); err != nil {
			return err
		}
		if _, dup := m.regByID[r.ID]; dup {
			return fmt.Errorf("dsm: duplicate region ID %q", r.ID)
		}
		m.regByID[r.ID] = r
		m.regByTag[r.Tag] = r
		for _, eid := range r.Entities {
			if _, ok := m.byID[eid]; !ok {
				return fmt.Errorf("dsm: region %s references unknown entity %q", r.ID, eid)
			}
		}
	}

	// Dense ids: entities index in insertion order (only ever used as an
	// array subscript), regions in sorted-RegionID order (compared by the
	// annotator's tie-breaks, so order must mirror the string order).
	for i, e := range m.Entities {
		e.idx = int32(i)
	}
	m.regIDs = intern.NewTable(len(m.Regions))
	m.regByIdx = make([]*SemanticRegion, 0, len(m.Regions))
	sortedRegs := append([]*SemanticRegion(nil), m.Regions...)
	sort.Slice(sortedRegs, func(i, j int) bool { return sortedRegs[i].ID < sortedRegs[j].ID })
	for _, r := range sortedRegs {
		r.idx = m.regIDs.Intern(string(r.ID))
		m.regByIdx = append(m.regByIdx, r)
	}

	m.buildFloorIndexes()
	m.deriveRegionEntities()
	if err := m.buildNavGraph(); err != nil {
		return err
	}
	m.buildRegionAdjacency()
	m.frozen = true
	return nil
}

// buildFloorIndexes groups walkable entities and regions per floor and
// indexes their bounding boxes on a 4 m grid.
func (m *Model) buildFloorIndexes() {
	m.floors = make(map[FloorID]*floorIndex)
	fl := func(f FloorID) *floorIndex {
		fi, ok := m.floors[f]
		if !ok {
			fi = &floorIndex{
				bounds:   geom.EmptyRect(),
				partGrid: geom.NewGridIndex(4),
				regGrid:  geom.NewGridIndex(4),
			}
			m.floors[f] = fi
		}
		return fi
	}
	for _, e := range m.Entities {
		fi := fl(e.Floor)
		fi.bounds = fi.bounds.Union(e.Shape.Bounds())
		if e.Kind.Walkable() {
			fi.partGrid.Insert(len(fi.partitions), e.Shape.Bounds())
			fi.partitions = append(fi.partitions, e)
		}
	}
	for _, r := range m.Regions {
		fi := fl(r.Floor)
		fi.regGrid.Insert(len(fi.regions), r.Shape.Bounds())
		fi.regions = append(fi.regions, r)
	}
	m.floorList = m.floorList[:0]
	//trips:commutative key collection; iteration order is erased by the sort below
	for f := range m.floors {
		m.floorList = append(m.floorList, f)
	}
	sort.Slice(m.floorList, func(i, j int) bool { return m.floorList[i] < m.floorList[j] })
}

// deriveRegionEntities fills missing region→entity mappings geometrically:
// a region covers every walkable entity whose centroid it contains.
func (m *Model) deriveRegionEntities() {
	for _, r := range m.Regions {
		if len(r.Entities) > 0 {
			continue
		}
		fi := m.floors[r.Floor]
		if fi == nil {
			continue
		}
		for _, e := range fi.partitions {
			if r.Shape.Contains(e.Center()) {
				r.Entities = append(r.Entities, e.ID)
			}
		}
	}
}

// Frozen reports whether Freeze has completed.
func (m *Model) Frozen() bool { return m.frozen }

// Entity returns the entity with the given ID, or nil.
func (m *Model) Entity(id EntityID) *Entity { return m.byID[id] }

// Region returns the region with the given ID, or nil.
func (m *Model) Region(id RegionID) *SemanticRegion { return m.regByID[id] }

// RegionByTag returns the region with the given semantic tag, or nil.
func (m *Model) RegionByTag(tag string) *SemanticRegion { return m.regByTag[tag] }

// Floors returns the floor numbers present in the model, ascending.
func (m *Model) Floors() []FloorID { return m.floorList }

// FloorBounds returns the bounding rectangle of all entities on floor f.
func (m *Model) FloorBounds(f FloorID) geom.Rect {
	if fi := m.floors[f]; fi != nil {
		return fi.bounds
	}
	return geom.EmptyRect()
}

// HasFloor reports whether the model has any entity on floor f.
func (m *Model) HasFloor(f FloorID) bool { _, ok := m.floors[f]; return ok }

// Locate returns the walkable partition containing the given location, or
// nil when the point lies in a wall, an obstacle or outside the building.
// When several partitions overlap (e.g. a staircase inside a hallway) the
// smallest-area one wins, matching the most specific entity.
// It iterates grid candidates in place rather than through QueryPoint,
// which allocates; Locate runs for every record the Cleaner speed-checks.
//
//trips:zeroalloc
func (m *Model) Locate(p geom.Point, f FloorID) *Entity {
	fi := m.floors[f]
	if fi == nil {
		return nil
	}
	var best *Entity
	bestArea := 0.0
	for _, i := range fi.partGrid.PointCandidates(p) {
		if !fi.partGrid.Bounds(i).Contains(p) {
			continue
		}
		e := fi.partitions[i]
		if e.Shape.Contains(p) {
			a := e.Shape.Area()
			if best == nil || a < bestArea {
				best, bestArea = e, a
			}
		}
	}
	return best
}

// SnapToWalkable returns the nearest point inside walkable space on floor f,
// together with the partition that contains it. If p is already walkable it
// is returned unchanged. The boolean is false when the floor has no
// partitions at all.
func (m *Model) SnapToWalkable(p geom.Point, f FloorID) (geom.Point, *Entity, bool) {
	if e := m.Locate(p, f); e != nil {
		return p, e, true
	}
	fi := m.floors[f]
	if fi == nil || len(fi.partitions) == 0 {
		return p, nil, false
	}
	// Search outward with growing query boxes before falling back to a
	// full scan, so the common near-miss case stays cheap.
	for _, radius := range snapRadii {
		var best *Entity
		bestD := radius
		it := fi.partGrid.QueryRectIter(geom.NewRect(p, p).Expand(radius))
		for i, ok := it.Next(); ok; i, ok = it.Next() {
			e := fi.partitions[i]
			if d := e.Shape.DistToPoint(p); d < bestD {
				best, bestD = e, d
			}
		}
		if best != nil {
			return clampInside(best.Shape, p), best, true
		}
	}
	var best *Entity
	bestD := 0.0
	for _, e := range fi.partitions {
		if d := e.Shape.DistToPoint(p); best == nil || d < bestD {
			best, bestD = e, d
		}
	}
	return clampInside(best.Shape, p), best, true
}

// snapRadii are the growing query-box radii SnapToWalkable tries before a
// full scan (hoisted so the hot path does not re-allocate the literal).
var snapRadii = [3]float64{2, 8, 32}

// clampInside returns the boundary point of pg nearest to p, nudged slightly
// inward so that subsequent Contains checks succeed.
func clampInside(pg geom.Polygon, p geom.Point) geom.Point {
	b := pg.ClosestBoundaryPoint(p)
	c := pg.Centroid()
	if pg.Contains(c) {
		// Pull 1 cm toward the centroid.
		d := c.Sub(b)
		if n := d.Norm(); n > geom.Eps {
			return b.Add(d.Scale(0.01 / n))
		}
	}
	return b
}

// RegionAt returns the semantic region containing the location, or nil.
// Overlapping regions resolve to the smallest area, the most specific tag.
//
//trips:zeroalloc
func (m *Model) RegionAt(p geom.Point, f FloorID) *SemanticRegion {
	fi := m.floors[f]
	if fi == nil {
		return nil
	}
	var best *SemanticRegion
	bestArea := 0.0
	for _, i := range fi.regGrid.PointCandidates(p) {
		if !fi.regGrid.Bounds(i).Contains(p) {
			continue
		}
		r := fi.regions[i]
		if r.Shape.Contains(p) {
			a := r.Shape.Area()
			if best == nil || a < bestArea {
				best, bestArea = r, a
			}
		}
	}
	return best
}

// RegionIdxAt returns the interned index of the region containing the
// location, or intern.None. It is RegionAt for the hot path: the annotator
// labels every tail record with it and compares/hashes the resulting ints,
// materializing region strings only when triplets are sealed.
//
//trips:zeroalloc
func (m *Model) RegionIdxAt(p geom.Point, f FloorID) intern.ID {
	if r := m.RegionAt(p, f); r != nil {
		return r.idx
	}
	return intern.None
}

// NumRegions returns the number of semantic regions; valid interned region
// indexes are [0, NumRegions).
func (m *Model) NumRegions() int { return len(m.regByIdx) }

// RegionByIdx returns the region with the given interned index, or nil for
// intern.None.
//
//trips:zeroalloc
func (m *Model) RegionByIdx(ix intern.ID) *SemanticRegion {
	if ix == intern.None {
		return nil
	}
	return m.regByIdx[ix]
}

// RegionIdx returns the interned index for a region id, or intern.None for
// ids not in the model.
func (m *Model) RegionIdx(id RegionID) intern.ID {
	if r := m.regByID[id]; r != nil {
		return r.idx
	}
	return intern.None
}

// RegionsOnFloor returns the regions on floor f in insertion order.
func (m *Model) RegionsOnFloor(f FloorID) []*SemanticRegion {
	if fi := m.floors[f]; fi != nil {
		return fi.regions
	}
	return nil
}

// PartitionsOnFloor returns the walkable entities on floor f.
func (m *Model) PartitionsOnFloor(f FloorID) []*Entity {
	if fi := m.floors[f]; fi != nil {
		return fi.partitions
	}
	return nil
}

// AdjacentRegions returns the regions directly reachable from r through the
// walkable topology (shared partitions or partitions joined by one door),
// computed by Freeze. The Complementor restricts its inference paths to this
// graph.
func (m *Model) AdjacentRegions(r RegionID) []RegionID { return m.regAdj[r] }

// MarshalJSON / file round-trip -------------------------------------------

// modelJSON is the serialized form: only declarative state, no indexes.
type modelJSON struct {
	Name        string            `json:"name"`
	FloorHeight float64           `json:"floorHeight"`
	Entities    []*Entity         `json:"entities"`
	Regions     []*SemanticRegion `json:"regions"`
}

// WriteTo serializes the model as indented JSON.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	err := enc.Encode(modelJSON{m.Name, m.FloorHeight, m.Entities, m.Regions})
	return 0, err
}

// Save writes the model to a JSON file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := m.WriteTo(f); err != nil {
		return fmt.Errorf("dsm: save %s: %w", path, err)
	}
	return f.Close()
}

// Read parses a model from JSON and freezes it.
func Read(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("dsm: decode: %w", err)
	}
	m := &Model{Name: mj.Name, FloorHeight: mj.FloorHeight, Entities: mj.Entities, Regions: mj.Regions}
	if err := m.Freeze(); err != nil {
		return nil, err
	}
	return m, nil
}

// Load reads a model from a JSON file and freezes it.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
