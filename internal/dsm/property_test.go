package dsm

import (
	"testing"
	"testing/quick"

	"trips/internal/geom"
)

// Property: for same-floor walkable points, the indoor walking distance is
// at least the Euclidean distance (walls can only lengthen a path, never
// shorten it) and the distance is symmetric.
func TestWalkingDistanceDominatesEuclidean(t *testing.T) {
	m := newTestVenue(t)
	f := func(seed uint32) bool {
		st := seed
		next := func(mod uint32) float64 {
			st = st*1664525 + 1013904223
			return float64(st%mod) + float64(st>>20%10)/10
		}
		a := geom.Pt(next(40), next(20))
		b := geom.Pt(next(40), next(20))
		// Snap both into walkable space first: the property concerns
		// walkable endpoints.
		pa, _, oka := m.SnapToWalkable(a, 1)
		pb, _, okb := m.SnapToWalkable(b, 1)
		if !oka || !okb {
			return true
		}
		d1, ok1 := m.WalkingDistance(Location{pa, 1}, Location{pb, 1})
		d2, ok2 := m.WalkingDistance(Location{pb, 1}, Location{pa, 1})
		if !ok1 || !ok2 {
			return false // the test venue is fully connected
		}
		if d1 < pa.Dist(pb)-1e-6 {
			return false
		}
		return almostEq(d1, d2)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: WalkingPath length is consistent with WalkingDistance for
// same-floor queries (path legs sum to no less than the reported optimum,
// within the snap slack).
func TestWalkingPathConsistent(t *testing.T) {
	m := newTestVenue(t)
	f := func(seed uint32) bool {
		st := seed
		next := func(mod uint32) float64 {
			st = st*1664525 + 1013904223
			return float64(st % mod)
		}
		a := geom.Pt(next(40), next(20))
		b := geom.Pt(next(40), next(20))
		pa, _, oka := m.SnapToWalkable(a, 1)
		pb, _, okb := m.SnapToWalkable(b, 1)
		if !oka || !okb {
			return true
		}
		d, ok := m.WalkingDistance(Location{pa, 1}, Location{pb, 1})
		if !ok {
			return false
		}
		path := m.WalkingPath(Location{pa, 1}, Location{pb, 1})
		if len(path) < 2 {
			return false
		}
		var sum float64
		for i := 1; i < len(path); i++ {
			sum += path[i-1].P.Dist(path[i].P)
		}
		// The path realizes the optimum within a small snapping slack.
		return sum >= d-1e-6 && sum <= d+1.0
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: RegionAt only ever returns a region whose shape contains the
// probed point on the probed floor, and Locate only returns walkable
// entities whose shape contains the point.
func TestLocateRegionConsistency(t *testing.T) {
	m := newTestVenue(t)
	f := func(seed uint32) bool {
		st := seed
		next := func(mod uint32) float64 {
			st = st*1664525 + 1013904223
			return float64(st % mod)
		}
		p := geom.Pt(next(42)-1, next(22)-1)
		if e := m.Locate(p, 1); e != nil {
			if !e.Kind.Walkable() || !e.Shape.Contains(p) {
				return false
			}
		}
		if r := m.RegionAt(p, 1); r != nil {
			if r.Floor != 1 || !r.Shape.Contains(p) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
