package dsm

import (
	"fmt"

	"trips/internal/geom"
	"trips/internal/intern"
)

// SemanticRegion is a user-defined region associated with practical
// semantics — a shop, a cashier desk, a gate, a meeting room. Regions are
// what spatial annotations in mobility semantics refer to ("stay, Adidas").
type SemanticRegion struct {
	ID RegionID `json:"id"`
	// Tag is the semantic label shown in mobility semantics, e.g. "Nike".
	Tag string `json:"tag"`
	// Category groups tags, e.g. "shop", "cashier", "hall", "gate".
	Category string       `json:"category,omitempty"`
	Floor    FloorID      `json:"floor"`
	Shape    geom.Polygon `json:"shape"`

	// Entities maps the region onto the indoor entities it covers. The
	// Space Modeler fills this when the analyst assigns a semantic tag to
	// drawn entities; the DSM can also derive it geometrically.
	Entities []EntityID `json:"entities,omitempty"`

	// Style carries the display style the Space Modeler attached
	// ("Users can customize and apply different styles").
	Style map[string]string `json:"style,omitempty"`

	// idx is the interned dense region index Freeze assigns in sorted
	// RegionID order; see Model.RegionIdxAt.
	idx intern.ID
}

// Idx returns the interned dense index Freeze assigned to the region.
// Integer comparison of indexes is equivalent to lexicographic comparison
// of RegionIDs (with intern.None standing in for "no region").
func (r *SemanticRegion) Idx() intern.ID { return r.idx }

// Center returns the representative point of the region.
func (r *SemanticRegion) Center() geom.Point { return r.Shape.Centroid() }

// Contains reports whether the given floor location lies in the region.
func (r *SemanticRegion) Contains(p geom.Point, f FloorID) bool {
	return f == r.Floor && r.Shape.Contains(p)
}

// Validate checks the region invariants.
func (r *SemanticRegion) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("dsm: region with empty ID")
	}
	if r.Tag == "" {
		return fmt.Errorf("dsm: region %s: empty tag", r.ID)
	}
	if err := r.Shape.Validate(); err != nil {
		return fmt.Errorf("dsm: region %s: %w", r.ID, err)
	}
	return nil
}
