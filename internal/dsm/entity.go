// Package dsm implements the Digital Space Model of TRIPS.
//
// The DSM is the semi-structured model the Space Modeler produces and every
// other component consumes (paper Sec. 3, "Creating DSM from Floorplan
// Image"). It records
//
//   - the geometric attributes and topological relations of indoor entities
//     (rooms, hallways, doors, walls, staircases, elevators, obstacles),
//   - the user-defined semantic regions and their connectivity, and
//   - the mapping between indoor entities and semantic regions.
//
// On top of the model the package offers the spatial computations the Raw
// Data Cleaner needs — point location, snapping to walkable space, and the
// minimum indoor walking distance over the door-connectivity graph (the
// speed-constraint reference of Yang et al., paper ref. [13]) — as well as
// the semantic-region lookups the Annotator and Complementor need.
//
// The whole model serializes to JSON ("stored in the DSM in JSON format,
// which is flexible to parse and manipulate").
package dsm

import (
	"fmt"

	"trips/internal/geom"
)

// EntityID identifies an indoor entity uniquely within a DSM.
type EntityID string

// RegionID identifies a semantic region uniquely within a DSM.
type RegionID string

// FloorID is a floor number. Ground floor is 1; basements are negative.
type FloorID int

// String formats the floor the way raw records print it, e.g. "3F".
func (f FloorID) String() string {
	if f < 0 {
		return fmt.Sprintf("B%d", -f)
	}
	return fmt.Sprintf("%dF", f)
}

// EntityKind classifies indoor entities. The kinds mirror the distinct
// entities the paper names: doors, walls, rooms, staircases.
type EntityKind string

// Entity kinds.
const (
	KindRoom      EntityKind = "room"      // enclosed walkable partition
	KindHallway   EntityKind = "hallway"   // open walkable partition
	KindDoor      EntityKind = "door"      // connects two partitions
	KindWall      EntityKind = "wall"      // impassable divider
	KindStaircase EntityKind = "staircase" // vertical connector
	KindElevator  EntityKind = "elevator"  // vertical connector
	KindObstacle  EntityKind = "obstacle"  // impassable island (pillar, kiosk)
)

// Walkable reports whether an entity of this kind can contain a person.
func (k EntityKind) Walkable() bool {
	switch k {
	case KindRoom, KindHallway, KindStaircase, KindElevator:
		return true
	}
	return false
}

// Vertical reports whether the kind connects floors.
func (k EntityKind) Vertical() bool {
	return k == KindStaircase || k == KindElevator
}

// Entity is one indoor entity on one floor. All entities carry polygon
// geometry; the Space Modeler converts drawn polylines (walls) and circles
// (pillars) to thin or polygonized shapes on save so that the model has a
// single geometry representation.
type Entity struct {
	ID    EntityID     `json:"id"`
	Kind  EntityKind   `json:"kind"`
	Name  string       `json:"name,omitempty"`
	Floor FloorID      `json:"floor"`
	Shape geom.Polygon `json:"shape"`

	// Connects lists, for doors, the walkable partitions the door joins.
	// When empty the DSM derives the adjacency geometrically.
	Connects []EntityID `json:"connects,omitempty"`

	// VerticalGroup names the shaft a staircase or elevator belongs to;
	// entities with the same group on adjacent floors are connected
	// vertically. Empty defaults to the entity Name.
	VerticalGroup string `json:"verticalGroup,omitempty"`

	// Tags holds free-form attributes attached by the Space Modeler
	// (style, drawn layer, source of digitization, ...).
	Tags map[string]string `json:"tags,omitempty"`

	// idx is the dense entity index Freeze assigns (position in
	// Model.Entities); the navigation graph keys per-partition state by it
	// so the Dijkstra hot path never hashes an EntityID string.
	idx int32
}

// Center returns the representative point of the entity (shape centroid).
func (e *Entity) Center() geom.Point { return e.Shape.Centroid() }

// verticalGroup resolves the effective shaft name.
func (e *Entity) verticalGroup() string {
	if e.VerticalGroup != "" {
		return e.VerticalGroup
	}
	return e.Name
}

// Validate checks the entity invariants.
func (e *Entity) Validate() error {
	if e.ID == "" {
		return fmt.Errorf("dsm: entity with empty ID")
	}
	switch e.Kind {
	case KindRoom, KindHallway, KindDoor, KindWall, KindStaircase, KindElevator, KindObstacle:
	default:
		return fmt.Errorf("dsm: entity %s: unknown kind %q", e.ID, e.Kind)
	}
	if err := e.Shape.Validate(); err != nil {
		return fmt.Errorf("dsm: entity %s: %w", e.ID, err)
	}
	return nil
}
