package experiments

import (
	"slices"
	"strings"
	"testing"
	"time"

	"trips/internal/simul"
)

// smallEnv keeps experiment tests fast.
func smallEnv(t *testing.T) *Env {
	t.Helper()
	spec := EnvSpec{Floors: 2, Shops: 4, Devices: 6, Seed: 4,
		Window: time.Hour, Errors: simul.DefaultErrorModel()}
	env, err := NewEnv(spec)
	if err != nil {
		t.Fatalf("NewEnv: %v", err)
	}
	return env
}

func TestReportString(t *testing.T) {
	r := Report{
		ID: "EX", Title: "demo", Notes: []string{"note"},
		Cols: []string{"a", "long-column"},
		Rows: [][]string{{"1", "2"}, {"wide-cell", "3"}},
	}
	s := r.String()
	for _, want := range []string{"EX", "demo", "note", "long-column", "wide-cell"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestE1(t *testing.T) {
	env := smallEnv(t)
	rep, err := E1(env)
	if err != nil {
		t.Fatalf("E1: %v", err)
	}
	if len(rep.Rows) < 3 || len(rep.Notes) != 2 {
		t.Errorf("E1 report shape: %d rows, %d notes", len(rep.Rows), len(rep.Notes))
	}
	if !strings.Contains(rep.Notes[0], "records/triplet") {
		t.Errorf("conciseness note = %q", rep.Notes[0])
	}
}

func TestE2(t *testing.T) {
	env := smallEnv(t)
	rep, err := E2(env)
	if err != nil {
		t.Fatalf("E2: %v", err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("E2 rows = %d", len(rep.Rows))
	}
	stages := []string{"cleaning", "annotation", "knowledge", "complementing"}
	for i, row := range rep.Rows {
		if row[0] != stages[i] {
			t.Errorf("row %d stage = %q", i, row[0])
		}
	}
}

func TestE3(t *testing.T) {
	rep, err := E3()
	if err != nil {
		t.Fatalf("E3: %v", err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("E3 rows = %d", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row[5] != "yes" {
			t.Errorf("venue %s not connected", row[0])
		}
	}
}

func TestE4a(t *testing.T) {
	env := smallEnv(t)
	rep, err := E4a(env)
	if err != nil {
		t.Fatalf("E4a: %v", err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("E4a rows = %d", len(rep.Rows))
	}
	// The ablation row is marked.
	if !strings.Contains(rep.Rows[3][0], "euclid") {
		t.Errorf("ablation row = %v", rep.Rows[3])
	}
}

func TestE4bAndE4c(t *testing.T) {
	env := smallEnv(t)
	repB, err := E4b(env)
	if err != nil {
		t.Fatalf("E4b: %v", err)
	}
	if len(repB.Rows) != 3 {
		t.Errorf("E4b rows = %d", len(repB.Rows))
	}
	repC, err := E4c(env)
	if err != nil {
		t.Fatalf("E4c: %v", err)
	}
	if len(repC.Rows) != 3 {
		t.Errorf("E4c rows = %d", len(repC.Rows))
	}
}

func TestE5AndE6(t *testing.T) {
	env := smallEnv(t)
	rep5, err := E5(env)
	if err != nil {
		t.Fatalf("E5: %v", err)
	}
	if len(rep5.Rows) != 3 {
		t.Errorf("E5 rows = %d", len(rep5.Rows))
	}
	rep6, err := E6(env)
	if err != nil {
		t.Fatalf("E6: %v", err)
	}
	if len(rep6.Rows) != 5 {
		t.Errorf("E6 rows = %d", len(rep6.Rows))
	}
}

func TestSyntheticFloorplanClasses(t *testing.T) {
	img := SyntheticFloorplan(100, 60)
	// Contains all three pixel classes.
	var wall, door, free bool
	for y := 0; y < 60; y++ {
		for x := 0; x < 100; x++ {
			switch v := img.GrayAt(x, y).Y; {
			case v < 80:
				wall = true
			case v < 200:
				door = true
			default:
				free = true
			}
		}
	}
	if !wall || !door || !free {
		t.Errorf("classes: wall=%v door=%v free=%v", wall, door, free)
	}
}

// cleaningRow accumulates floating-point error sums per device; before the
// loop was forced through sorted device order the accumulation followed map
// iteration, so the reported averages could wobble in their last digits
// between runs of the same experiment. Regression: repeated rows must match
// cell-for-cell.
func TestCleaningRowDeterministic(t *testing.T) {
	env := smallEnv(t)
	em := simul.DefaultErrorModel()
	first, err := cleaningRow(env, em, false)
	if err != nil {
		t.Fatalf("cleaningRow: %v", err)
	}
	for run := 0; run < 2; run++ {
		again, err := cleaningRow(env, em, false)
		if err != nil {
			t.Fatalf("cleaningRow: %v", err)
		}
		if !slices.Equal(first, again) {
			t.Fatalf("run %d: row changed\nfirst: %v\nagain: %v", run+1, first, again)
		}
	}
}
