package experiments

import (
	"fmt"
	"time"

	"trips/internal/annotation"
	"trips/internal/cleaning"
	"trips/internal/complement"
	"trips/internal/config"
	"trips/internal/core"
	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
	"trips/internal/viewer"
)

// E4a sweeps the error model and measures the Cleaning layer: mean planar
// error and floor accuracy before vs after cleaning, including the
// Euclidean-speed ablation (DESIGN.md §5.1).
func E4a(env *Env) (Report, error) {
	out := Report{
		ID:    "E4a",
		Title: "Figure 3 (cleaning layer) — repair quality across error levels",
		Cols: []string{"noise σ", "floor err", "outliers", "pos err before", "pos err after",
			"floor acc before", "floor acc after", "repairs"},
	}
	cases := []simul.ErrorModel{
		{NoiseSigma: 1.0, FloorErrProb: 0.01, OutlierProb: 0.02, MinPeriod: 3 * time.Second, MaxPeriod: 8 * time.Second},
		{NoiseSigma: 2.5, FloorErrProb: 0.03, OutlierProb: 0.05, MinPeriod: 3 * time.Second, MaxPeriod: 8 * time.Second},
		{NoiseSigma: 4.0, FloorErrProb: 0.08, OutlierProb: 0.10, MinPeriod: 3 * time.Second, MaxPeriod: 8 * time.Second},
	}
	for _, em := range cases {
		row, err := cleaningRow(env, em, false)
		if err != nil {
			return out, err
		}
		out.Rows = append(out.Rows, row)
	}
	// Ablation: Euclidean speed check at the middle error level.
	row, err := cleaningRow(env, cases[1], true)
	if err != nil {
		return out, err
	}
	row[0] += " (euclid)"
	out.Rows = append(out.Rows, row)
	out.Notes = []string{
		"euclid = ablation: speed check on straight-line distance instead of indoor walking distance;",
		"it repairs fewer records (wall-crossing errors pass) — see the repairs column.",
	}
	return out, nil
}

func cleaningRow(env *Env, em simul.ErrorModel, euclid bool) ([]string, error) {
	// Fresh devices under this error model, reusing the env's venue.
	sim := simul.NewSim(env.Model, 99)
	raw, truths, err := sim.Population(8, Start, 2*time.Hour, em)
	if err != nil {
		return nil, err
	}
	cl := cleaning.New(env.Model)
	cl.UseEuclidean = euclid
	var errBefore, errAfter float64
	var flBeforeOK, flAfterOK, n, repairs int
	// Devices in sorted order: the error sums are floating-point, so the
	// accumulation order must not depend on map iteration or the reported
	// table wobbles in its last digits across runs.
	for _, dev := range raw.Devices() {
		truth, ok := truths[dev]
		if !ok {
			continue
		}
		seq := raw.Sequence(dev)
		cleaned, rep := cl.Clean(seq)
		repairs += rep.Modified()
		for i, r := range seq.Records {
			tr := truthAtTime(truth.Records, r.At)
			errBefore += r.P.Dist(tr.P)
			errAfter += cleaned.Records[i].P.Dist(tr.P)
			if r.Floor == tr.Floor {
				flBeforeOK++
			}
			if cleaned.Records[i].Floor == tr.Floor {
				flAfterOK++
			}
			n++
		}
	}
	fn := float64(n)
	return []string{
		fmt.Sprintf("%.1f", em.NoiseSigma), pc(em.FloorErrProb), pc(em.OutlierProb),
		fmt.Sprintf("%.2f m", errBefore/fn), fmt.Sprintf("%.2f m", errAfter/fn),
		pc(float64(flBeforeOK) / fn), pc(float64(flAfterOK) / fn),
		fmt.Sprint(repairs),
	}, nil
}

// truthAtTime binary-searches the dense truth trace.
func truthAtTime(s *position.Sequence, t time.Time) position.Record {
	recs := s.Records
	lo, hi := 0, len(recs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if recs[mid].At.Before(t) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && t.Sub(recs[lo-1].At) < recs[lo].At.Sub(t) {
		return recs[lo-1]
	}
	return recs[lo]
}

// E4b measures the Annotation layer: event identification cross-validation
// accuracy for each of the three classifiers, and end-to-end agreement per
// classifier.
func E4b(env *Env) (Report, error) {
	out := Report{
		ID:    "E4b",
		Title: "Figure 3 (annotation layer) — event identification models",
		Cols:  []string{"classifier", "5-fold accuracy", "time agreement", "event agreement", "F1"},
	}
	// Shared design matrix from the editor's training set.
	ts := env.Editor.TrainingSet()
	var X [][]float64
	var y []int
	labels := map[semantics.Event]int{semantics.EventPassBy: 0, semantics.EventStay: 1}
	for _, seg := range ts.Segments {
		lbl, ok := labels[seg.Event]
		if !ok {
			continue
		}
		X = append(X, annotation.FeaturizeRecords(seg.Records, false))
		y = append(y, lbl)
	}
	sc := annotation.FitScaler(X)
	Z := sc.TransformAll(X)

	for _, name := range []string{"gaussian-nb", "logistic-regression", "decision-tree"} {
		mk := func() annotation.Classifier {
			c, _ := core.NewClassifier(name)
			return c
		}
		acc, err := annotation.CrossValidate(mk, Z, y, 5)
		if err != nil {
			return out, err
		}
		// End-to-end with this classifier.
		em, err := core.TrainEventModel(ts, config.AnnotatorConfig{Classifier: name})
		if err != nil {
			return out, err
		}
		tr, err := core.NewTranslator(env.Model, em, config.CleanerConfig{}, config.AnnotatorConfig{}, config.ComplementorConfig{})
		if err != nil {
			return out, err
		}
		results := tr.Translate(env.Raw)
		rep := meanReport(results, env.Truths)
		out.Rows = append(out.Rows, []string{
			name, pc(acc), pc(rep.TimeAgreement), pc(rep.EventAgreement), f2(rep.F1),
		})
	}
	out.Notes = []string{fmt.Sprintf("%d labeled segments", len(X))}
	return out, nil
}

// E4c measures the Complementing layer: inject dropouts of growing length
// into the observations and count how many vanished region visits the MAP
// inference recovers, learned prior vs uniform-prior ablation.
func E4c(env *Env) (Report, error) {
	out := Report{
		ID:    "E4c",
		Title: "Figure 3 (complementing layer) — gap recovery by MAP inference",
		Cols:  []string{"dropout", "gaps", "recovered (learned)", "recovered (uniform)"},
	}
	// Build knowledge from the whole population's annotations.
	results := env.Trans.Translate(env.Raw)
	var all []*semantics.Sequence
	for _, r := range results {
		all = append(all, r.Original)
	}
	know := complement.BuildKnowledge(env.Model, all, env.Trans.KnowledgeJoinGap)

	for _, drop := range []time.Duration{3 * time.Minute, 6 * time.Minute, 10 * time.Minute} {
		gaps, recL, recU := 0, 0, 0
		for _, r := range results {
			seq := r.Original
			// Drop each interior triplet in turn and check whether the
			// complementor re-infers its region within the gap. Only gaps
			// whose surviving endpoints name DIFFERENT regions qualify:
			// region-path inference between a region and itself has no
			// interior by construction (the paper's Complementor likewise
			// infers "between two semantic regions").
			for i := 1; i < seq.Len()-1; i++ {
				victim := seq.Triplets[i]
				if victim.RegionID == "" || victim.Duration() > drop {
					continue
				}
				prev, next := seq.Triplets[i-1], seq.Triplets[i+1]
				if prev.RegionID == "" || next.RegionID == "" || prev.RegionID == next.RegionID {
					continue
				}
				reduced := dropTriplet(seq, i)
				gaps++
				if recovers(env.Model, know, false, reduced, victim) {
					recL++
				}
				if recovers(env.Model, know, true, reduced, victim) {
					recU++
				}
			}
		}
		rateL, rateU := "n/a", "n/a"
		if gaps > 0 {
			rateL = pc(float64(recL) / float64(gaps))
			rateU = pc(float64(recU) / float64(gaps))
		}
		out.Rows = append(out.Rows, []string{drop.String(), fmt.Sprint(gaps), rateL, rateU})
	}
	out.Notes = []string{
		"each interior observed triplet shorter than the dropout and flanked by two",
		"distinct regions is removed; the Complementor must re-infer its region.",
		"uniform = topology-only prior ablation (route choice unguided by knowledge).",
	}
	return out, nil
}

func dropTriplet(s *semantics.Sequence, i int) *semantics.Sequence {
	out := semantics.NewSequence(s.Device)
	for j, t := range s.Triplets {
		if j != i {
			out.Append(t)
		}
	}
	return out
}

func recovers(m *dsm.Model, know *complement.Knowledge, uniform bool, reduced *semantics.Sequence, victim semantics.Triplet) bool {
	comp := complement.NewComplementor(m, know)
	comp.MaxGap = 30 * time.Second // the synthetic gap must qualify
	comp.UniformPrior = uniform
	filled, _ := comp.Complement(reduced)
	for _, t := range filled.Triplets {
		if t.Inferred && t.RegionID == victim.RegionID && t.Overlaps(victim.From, victim.To) {
			return true
		}
	}
	return false
}

// E5 measures Figure 4: the cost of the unified visualization — SVG map and
// timeline rendering time and output size versus sequence length.
func E5(env *Env) (Report, error) {
	out := Report{
		ID:    "E5",
		Title: "Figure 4 — unified rendering of the four mobility data sequences",
		Cols:  []string{"records", "sources", "map svg", "timeline svg", "render time"},
	}
	devs := env.Raw.Devices()
	if len(devs) == 0 {
		return out, fmt.Errorf("e5: empty dataset")
	}
	for _, count := range []int{100, 500, 2000} {
		// Concatenate device data until count records are available.
		seq := position.NewSequence("e5")
		for _, dev := range devs {
			for _, r := range env.Raw.Sequence(dev).Records {
				if seq.Len() >= count {
					break
				}
				rr := r
				rr.Device = "e5"
				seq.Append(rr)
			}
			if seq.Len() >= count {
				break
			}
		}
		res := env.Trans.TranslateOne(seq, nil)
		v := viewer.NewView(env.Model)
		v.SetSource(viewer.SourceRaw, viewer.FromPositioning(viewer.SourceRaw, res.Raw))
		v.SetSource(viewer.SourceCleaned, viewer.FromPositioning(viewer.SourceCleaned, res.Cleaned))
		v.SetSource(viewer.SourceSemantics, viewer.FromSemantics(res.Final))
		st := time.Now()
		mapSVG := viewer.RenderSVG(v, viewer.RenderOptions{})
		tlSVG := viewer.RenderTimelineSVG(v, 900)
		el := time.Since(st)
		out.Rows = append(out.Rows, []string{
			fmt.Sprint(seq.Len()), fmt.Sprint(len(v.Sources())),
			fmt.Sprintf("%d KB", len(mapSVG)/1024),
			fmt.Sprintf("%d KB", len(tlSVG)/1024),
			d(el),
		})
	}
	return out, nil
}

// Keep events import used (training-set types appear in E4b signature docs).
var _ events.TrainingSet
