package experiments

import (
	"time"

	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/simul"
)

// lcg is a tiny deterministic generator for workload jitter, so the online
// benchmarks replay the identical record stream on every run.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>11) / float64(1<<53)
}

// LongSessionRecords synthesizes one device's continuous journey of exactly
// n records: repeated dwells at the mall's shop regions with hall walks in
// between, sampled every 5 seconds with positioning jitter, never pausing
// longer than the split MaxGap. The session therefore stays alive the whole
// time — no hard break ever trims its tail — which is exactly the workload
// where per-flush recompute cost over the tail dominates: the long-session
// variants of BenchmarkOnlineTranslate and cmd/trips-bench -online feed it
// at tail lengths 1k/8k to verify flush cost tracks the new suffix, not the
// tail.
func LongSessionRecords(env *Env, dev position.DeviceID, n int) []position.Record {
	const period = 5 * time.Second
	regs := simul.ShopRegions(env.Model)
	// Single-floor itinerary: cross-floor legs would add elevator dwells
	// that distract from the flush-cost measurement.
	floor := regs[0].Floor
	var centers []geom.Point
	for _, r := range regs {
		if r.Floor == floor {
			centers = append(centers, r.Center())
		}
	}
	g := lcg(11)
	out := make([]position.Record, 0, n)
	at := Start
	emit := func(p geom.Point) {
		out = append(out, position.Record{Device: dev, P: p, Floor: floor, At: at})
		at = at.Add(period)
	}
	for i := 0; len(out) < n; i++ {
		// Dwell: ~3.5 minutes of jittered samples around the shop center.
		c := centers[i%len(centers)]
		for s := 0; s < 42 && len(out) < n; s++ {
			emit(geom.Pt(c.X+(g.next()-0.5)*2, c.Y+(g.next()-0.5)*2))
		}
		// Walk to the next shop at ~1.4 m/s.
		next := centers[(i+1)%len(centers)]
		steps := int(c.Dist(next)/(1.4*period.Seconds())) + 1
		for s := 1; s <= steps && len(out) < n; s++ {
			t := float64(s) / float64(steps)
			p := c.Lerp(next, t)
			emit(geom.Pt(p.X+(g.next()-0.5)*0.8, p.Y+(g.next()-0.5)*0.8))
		}
	}
	return out
}
