package experiments

import (
	"fmt"
	"image"
	"image/color"
	"time"

	"trips/internal/complement"
	"trips/internal/dsm"
	"trips/internal/floorplan"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
)

// E1 regenerates Table 1: one shopper's raw records beside the translated
// mobility semantics, plus the conciseness ratios the paper motivates and
// the agreement against ground truth (which the demo assesses visually).
func E1(env *Env) (Report, error) {
	// A fixed Adidas → Nike → Cashier itinerary echoing the paper's
	// example shopper oi.
	regs := []string{"Adidas", "Nike", "Cashier"}
	visits := make([]simul.Visit, 0, len(regs))
	for _, tag := range regs {
		r := env.Model.RegionByTag(tag)
		if r == nil {
			return Report{}, fmt.Errorf("e1: region %q missing", tag)
		}
		visits = append(visits, simul.Visit{Region: r.ID, Stay: 6 * time.Minute})
	}
	truth, err := env.Sim.SimulateVisit("oi", Start.Add(3*time.Hour+2*time.Minute), visits)
	if err != nil {
		return Report{}, err
	}
	raw := env.Sim.Observe(truth, simul.DefaultErrorModel())
	res := env.Trans.TranslateOne(raw, nil)
	rep := semantics.Compare(res.Final, truth.Semantics, 5*time.Second)

	out := Report{
		ID:    "E1",
		Title: "Table 1 — raw indoor positioning data vs. mobility semantics",
		Cols:  []string{"raw record (head)", "mobility semantics"},
	}
	n := res.Final.Len()
	for i := 0; i < max(3, n); i++ {
		var left, right string
		if i < raw.Len() {
			left = raw.Records[i].String()
		}
		if i == max(3, n)-1 && raw.Len() > max(3, n) {
			left = fmt.Sprintf("... (%d more records)", raw.Len()-i)
		}
		if i < n {
			right = res.Final.Triplets[i].String()
		}
		out.Rows = append(out.Rows, []string{left, right})
	}
	out.Notes = []string{
		fmt.Sprintf("conciseness: %.1f records/triplet, %.1fx byte compression",
			res.Conciseness.RecordsPerTriplet, res.Conciseness.ByteRatio),
		fmt.Sprintf("vs ground truth: time agreement %s, event agreement %s, F1 %s",
			pc(rep.TimeAgreement), pc(rep.EventAgreement), f2(rep.F1)),
	}
	return out, nil
}

// E2 measures Figure 1's dataflow as per-stage throughput: records/second
// through the Cleaner, the Annotator and the Complementor, plus end-to-end.
func E2(env *Env) (Report, error) {
	seqs := env.Raw.Sequences()
	total := env.Raw.NumRecords()

	tClean := time.Duration(0)
	cleaned := make([]*position.Sequence, len(seqs))
	for i, s := range seqs {
		st := time.Now()
		cleaned[i], _ = env.Trans.Cleaner.Clean(s)
		tClean += time.Since(st)
	}
	tAnn := time.Duration(0)
	annotated := make([]*semantics.Sequence, len(seqs))
	for i, s := range cleaned {
		st := time.Now()
		annotated[i] = env.Trans.Annotator.Annotate(s)
		tAnn += time.Since(st)
	}
	tComp := time.Duration(0)
	st := time.Now()
	know := buildKnowledge(env, annotated)
	tKnow := time.Since(st)
	inserted := 0
	for _, s := range annotated {
		st := time.Now()
		comp := *env.Trans.Complementor
		comp.Know = know
		_, n := comp.Complement(s)
		tComp += time.Since(st)
		inserted += n
	}

	rate := func(d time.Duration) string {
		if d <= 0 {
			return "inf"
		}
		return fmt.Sprintf("%.0f", float64(total)/d.Seconds())
	}
	out := Report{
		ID:    "E2",
		Title: "Figure 1 — per-stage throughput of the translation dataflow",
		Cols:  []string{"stage", "time", "records/s", "output"},
		Rows: [][]string{
			{"cleaning", d(tClean), rate(tClean), fmt.Sprintf("%d cleaned records", total)},
			{"annotation", d(tAnn), rate(tAnn), fmt.Sprintf("%d triplets", countTriplets(annotated))},
			{"knowledge", d(tKnow), rate(tKnow), fmt.Sprintf("%d transitions", know.Observations())},
			{"complementing", d(tComp), rate(tComp), fmt.Sprintf("%d inferred triplets", inserted)},
		},
		Notes: []string{fmt.Sprintf("%d devices, %d raw records", len(seqs), total)},
	}
	return out, nil
}

func countTriplets(seqs []*semantics.Sequence) int {
	n := 0
	for _, s := range seqs {
		n += s.Len()
	}
	return n
}

// E3 measures Figure 2's outcome: DSM creation — programmatic drawing (the
// mall generator plays the analyst) and raster floorplan tracing — with
// venue size sweep and topology timing.
func E3() (Report, error) {
	out := Report{
		ID:    "E3",
		Title: "Figure 2 — DSM creation from floorplans (drawing + tracing)",
		Cols:  []string{"source", "floors", "entities", "regions", "build time", "connected"},
	}
	for _, floors := range []int{1, 3, 7} {
		st := time.Now()
		m, err := simul.BuildMall(simul.MallSpec{Floors: floors, ShopsPerFloor: 8})
		if err != nil {
			return out, err
		}
		el := time.Since(st)
		conn := "yes"
		if floors > 1 {
			lo := m.RegionsOnFloor(1)[0]
			hiF := dsm.FloorID(floors)
			hi := m.RegionsOnFloor(hiF)[0]
			if !m.Reachable(dsm.Location{P: lo.Center(), Floor: 1}, dsm.Location{P: hi.Center(), Floor: hiF}) {
				conn = "NO"
			}
		}
		out.Rows = append(out.Rows, []string{
			"drawn mall", fmt.Sprint(floors), fmt.Sprint(len(m.Entities)),
			fmt.Sprint(len(m.Regions)), d(el), conn,
		})
	}
	// Raster tracing of a synthetic floorplan image.
	img := SyntheticFloorplan(400, 240)
	st := time.Now()
	canvas, err := floorplan.Trace(img, 1, floorplan.DefaultTraceOptions())
	if err != nil {
		return out, err
	}
	m, err := floorplan.Build("traced", floorplan.BuildOptions{}, canvas)
	if err != nil {
		return out, err
	}
	el := time.Since(st)
	out.Rows = append(out.Rows, []string{
		"traced image", "1", fmt.Sprint(len(m.Entities)), fmt.Sprint(len(m.Regions)), d(el), "yes",
	})
	out.Notes = []string{"traced image: 400x240 px at 0.25 m/px, rooms + corridor + door gaps"}
	return out, nil
}

// SyntheticFloorplan paints a floorplan raster: a corridor along the bottom
// and a row of rooms above it, door gaps marked mid-gray.
func SyntheticFloorplan(w, h int) *image.Gray {
	img := image.NewGray(image.Rect(0, 0, w, h))
	fill := func(x0, y0, x1, y1 int, v uint8) {
		for y := y0; y < y1 && y < h; y++ {
			for x := x0; x < x1 && x < w; x++ {
				img.SetGray(x, y, color.Gray{Y: v})
			}
		}
	}
	corridorTop := h / 3
	fill(4, 4, w-4, corridorTop, 255) // corridor
	rooms := 4
	rw := (w - 8) / rooms
	for i := 0; i < rooms; i++ {
		x0 := 4 + i*rw
		fill(x0+4, corridorTop+4, x0+rw-4, h-4, 255)                // room
		fill(x0+rw/2-6, corridorTop, x0+rw/2+6, corridorTop+4, 128) // door gap
	}
	return img
}

func buildKnowledge(env *Env, seqs []*semantics.Sequence) *complement.Knowledge {
	return complement.BuildKnowledge(env.Model, seqs, env.Trans.KnowledgeJoinGap)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E6 runs the five-step workflow of Figures 5–6 end to end and reports one
// row per step — the walk-through as a reproducible experiment.
func E6(env *Env) (Report, error) {
	out := Report{
		ID:    "E6",
		Title: "Figures 5–6 — five-step workflow walk-through",
		Cols:  []string{"step", "action", "outcome"},
	}
	// (1) Data Selector: operating hours 10:00–22:00.
	sel := selectOperatingHours(env.Raw)
	out.Rows = append(out.Rows, []string{"1", "Data Selector: daily window 10–22, ≥20 records",
		fmt.Sprintf("%d of %d devices selected", sel.NumDevices(), env.Raw.NumDevices())})
	// (2) Space Modeler: the DSM (generated here; drawn/traced in E3).
	out.Rows = append(out.Rows, []string{"2", "Space Modeler: DSM loaded",
		fmt.Sprintf("%d entities, %d regions, %d floors", len(env.Model.Entities), len(env.Model.Regions), len(env.Model.Floors()))})
	// (3) Event Editor: patterns + training data.
	counts := env.Editor.TrainingSet().Counts()
	out.Rows = append(out.Rows, []string{"3", "Event Editor: designate training segments",
		fmt.Sprintf("stay=%d pass-by=%d segments", counts[semantics.EventStay], counts[semantics.EventPassBy])})
	// (4) Translator.
	st := time.Now()
	results := env.Trans.Translate(sel)
	el := time.Since(st)
	triplets, inferred := 0, 0
	for _, r := range results {
		triplets += r.Final.Len()
		inferred += r.Inserted
	}
	out.Rows = append(out.Rows, []string{"4", "Translator: clean + annotate + complement",
		fmt.Sprintf("%d triplets (%d inferred) in %s", triplets, inferred, d(el))})
	// (5) Viewer assessment vs ground truth.
	rep := meanReport(results, env.Truths)
	out.Rows = append(out.Rows, []string{"5", "Viewer: assess vs ground truth",
		fmt.Sprintf("time agreement %s, F1 %s", pc(rep.TimeAgreement), f2(rep.F1))})
	return out, nil
}

func selectOperatingHours(ds *position.Dataset) *position.Dataset {
	out := position.NewDataset()
	for _, s := range ds.Sequences() {
		trimmed := position.NewSequence(s.Device)
		for _, r := range s.Records {
			if h := r.At.Hour(); h >= 10 && h < 22 {
				trimmed.Append(r)
			}
		}
		if trimmed.Len() >= 20 {
			out.AddSequence(trimmed)
		}
	}
	return out
}
