// Package experiments implements the reproduction harness: one entry point
// per paper artifact (Table 1, Figures 1–6), each regenerating the
// artifact's content or measuring the behaviour it illustrates, as indexed
// in DESIGN.md §4. cmd/trips-bench prints the reports; bench_test.go wraps
// the same entry points in testing.B; EXPERIMENTS.md records the outcomes.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"trips/internal/config"
	"trips/internal/core"
	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/simul"
)

// Env is the shared experimental setup: a mall, a simulated population with
// ground truth, and a trained translator.
type Env struct {
	Model  *dsm.Model
	Sim    *simul.Sim
	Raw    *position.Dataset
	Truths map[position.DeviceID]simul.Truth
	Editor *events.Editor
	Trans  *core.Translator
}

// EnvSpec sizes the setup.
type EnvSpec struct {
	Floors, Shops, Devices int
	Seed                   int64
	Window                 time.Duration
	Errors                 simul.ErrorModel
	Classifier             string
}

// DefaultEnvSpec is a laptop-scale version of the paper's venue: 3 floors,
// 6 shops per floor, 20 devices over 4 hours.
func DefaultEnvSpec() EnvSpec {
	return EnvSpec{
		Floors: 3, Shops: 6, Devices: 20, Seed: 1,
		Window: 4 * time.Hour,
		Errors: simul.DefaultErrorModel(),
	}
}

// Start is the common simulation start instant (the paper dataset's first
// day, 2017-01-01, at opening time).
var Start = time.Date(2017, 1, 1, 10, 0, 0, 0, time.UTC)

// NewEnv builds the environment: generate, label, train.
func NewEnv(spec EnvSpec) (*Env, error) {
	model, err := simul.BuildMall(simul.MallSpec{Floors: spec.Floors, ShopsPerFloor: spec.Shops})
	if err != nil {
		return nil, err
	}
	sim := simul.NewSim(model, spec.Seed)
	raw, truths, err := sim.Population(spec.Devices, Start, spec.Window, spec.Errors)
	if err != nil {
		return nil, err
	}
	ed := events.NewEditor()
	for _, es := range simul.TrainingSegments(raw, truths, 40) {
		for _, recs := range es.Segments {
			if err := ed.AddSegment(events.LabeledSegment{Event: es.Event, Device: recs[0].Device, Records: recs}); err != nil {
				return nil, err
			}
		}
	}
	ac := config.AnnotatorConfig{Classifier: spec.Classifier}
	em, err := core.TrainEventModel(ed.TrainingSet(), ac)
	if err != nil {
		return nil, err
	}
	tr, err := core.NewTranslator(model, em, config.CleanerConfig{}, ac, config.ComplementorConfig{})
	if err != nil {
		return nil, err
	}
	return &Env{Model: model, Sim: sim, Raw: raw, Truths: truths, Editor: ed, Trans: tr}, nil
}

// Report is a printable experiment outcome: a title, column headers and
// rows — the "same rows/series the paper reports" contract.
type Report struct {
	ID    string
	Title string
	Notes []string
	Cols  []string
	Rows  [][]string
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "   %s\n", n)
	}
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Cols)
	line(dashes(widths))
	for _, row := range r.Rows {
		line(row)
	}
	return b.String()
}

func dashes(widths []int) []string {
	out := make([]string, len(widths))
	for i, w := range widths {
		out[i] = strings.Repeat("-", w)
	}
	return out
}

func f1(v float64) string      { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string      { return fmt.Sprintf("%.2f", v) }
func pc(v float64) string      { return fmt.Sprintf("%.1f%%", 100*v) }
func d(v time.Duration) string { return v.Round(time.Microsecond).String() }

// meanReport averages Compare over all devices of a result set.
func meanReport(results []core.Result, truths map[position.DeviceID]simul.Truth) semantics.MatchReport {
	var agg semantics.MatchReport
	n := 0
	for _, r := range results {
		truth, ok := truths[r.Device]
		if !ok {
			continue
		}
		rep := semantics.Compare(r.Final, truth.Semantics, 5*time.Second)
		agg.TimeAgreement += rep.TimeAgreement
		agg.EventAgreement += rep.EventAgreement
		agg.Precision += rep.Precision
		agg.Recall += rep.Recall
		agg.F1 += rep.F1
		n++
	}
	if n > 0 {
		agg.TimeAgreement /= float64(n)
		agg.EventAgreement /= float64(n)
		agg.Precision /= float64(n)
		agg.Recall /= float64(n)
		agg.F1 /= float64(n)
	}
	return agg
}
