package complement

import (
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/semantics"
	"trips/internal/testvenue"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

func trip(ev semantics.Event, rid dsm.RegionID, tag string, fromOff, toOff time.Duration) semantics.Triplet {
	return semantics.Triplet{Event: ev, Region: tag, RegionID: rid,
		From: t0.Add(fromOff), To: t0.Add(toOff)}
}

// observedSeqs builds training sequences that traverse
// Adidas → Hall → Nike frequently and Adidas → Hall → Cashier rarely.
func observedSeqs() []*semantics.Sequence {
	var seqs []*semantics.Sequence
	mk := func(last dsm.RegionID, lastTag string) *semantics.Sequence {
		s := semantics.NewSequence("train")
		s.Append(trip(semantics.EventStay, "rg-adidas", "Adidas", 0, 5*time.Minute))
		s.Append(trip(semantics.EventPassBy, "rg-hall", "Center Hall", 5*time.Minute+10*time.Second, 6*time.Minute))
		s.Append(trip(semantics.EventStay, last, lastTag, 6*time.Minute+10*time.Second, 12*time.Minute))
		return s
	}
	for i := 0; i < 9; i++ {
		seqs = append(seqs, mk("rg-nike", "Nike"))
	}
	seqs = append(seqs, mk("rg-cashier", "Cashier"))
	return seqs
}

func TestBuildKnowledge(t *testing.T) {
	m := testvenue.MustTwoFloor()
	k := BuildKnowledge(m, observedSeqs(), 2*time.Minute)
	if k.Observations() != 20 { // 2 transitions per sequence × 10
		t.Errorf("observations = %d, want 20", k.Observations())
	}
	// Hall→Nike observed 9×, Hall→Cashier 1×: probabilities ordered.
	pn := k.TransitionProb("rg-hall", "rg-nike")
	pc := k.TransitionProb("rg-hall", "rg-cashier")
	if pn <= pc {
		t.Errorf("P(hall→nike)=%v should exceed P(hall→cashier)=%v", pn, pc)
	}
	// Smoothing: unobserved but adjacent transitions stay positive.
	if p := k.TransitionProb("rg-nike", "rg-hall"); p <= 0 {
		t.Errorf("smoothed prob = %v", p)
	}
	// Non-adjacent regions have zero probability regardless of counts.
	if p := k.TransitionProb("rg-adidas", "rg-books"); p != 0 {
		t.Errorf("non-adjacent prob = %v", p)
	}
}

func TestKnowledgeIgnoresLongGapsAndInferred(t *testing.T) {
	m := testvenue.MustTwoFloor()
	s := semantics.NewSequence("x")
	s.Append(trip(semantics.EventStay, "rg-adidas", "Adidas", 0, 5*time.Minute))
	// 30-minute dropout: must not count as a direct transition.
	s.Append(trip(semantics.EventStay, "rg-cashier", "Cashier", 35*time.Minute, 40*time.Minute))
	// Inferred triplets must not contribute.
	inf := trip(semantics.EventPassBy, "rg-hall", "Center Hall", 40*time.Minute+10*time.Second, 41*time.Minute)
	inf.Inferred = true
	s.Append(inf)
	k := BuildKnowledge(m, []*semantics.Sequence{s}, 2*time.Minute)
	if k.Observations() != 0 {
		t.Errorf("observations = %d, want 0", k.Observations())
	}
}

func TestMostLikelyNext(t *testing.T) {
	m := testvenue.MustTwoFloor()
	k := BuildKnowledge(m, observedSeqs(), 2*time.Minute)
	next, p := k.MostLikelyNext("rg-hall")
	if next != "rg-nike" || p <= 0 {
		t.Errorf("MostLikelyNext(hall) = %v, %v", next, p)
	}
}

func TestComplementFillsGap(t *testing.T) {
	m := testvenue.MustTwoFloor()
	k := BuildKnowledge(m, observedSeqs(), 2*time.Minute)
	c := NewComplementor(m, k)

	// Gap between Adidas and Nike: the device vanished for 10 minutes.
	// Adidas and Nike touch geometrically, but the most likely route in
	// the venue passes the hall (doors); both are acceptable topologies —
	// here we use Adidas → Cashier which must route via the hall or the
	// shop chain.
	s := semantics.NewSequence("oi")
	s.Append(trip(semantics.EventStay, "rg-adidas", "Adidas", 0, 5*time.Minute))
	s.Append(trip(semantics.EventStay, "rg-cashier", "Cashier", 15*time.Minute, 20*time.Minute))

	out, n := c.Complement(s)
	if n == 0 {
		t.Fatal("no triplets inferred")
	}
	if out.Len() != s.Len()+n {
		t.Errorf("length %d != %d + %d", out.Len(), s.Len(), n)
	}
	// Inferred triplets are flagged, lie inside the gap, and are ordered.
	for _, tr := range out.Triplets[1 : out.Len()-1] {
		if !tr.Inferred {
			t.Errorf("middle triplet not inferred: %+v", tr)
		}
		if tr.From.Before(t0.Add(5*time.Minute)) || tr.To.After(t0.Add(15*time.Minute)) {
			t.Errorf("inferred triplet outside gap: %v–%v", tr.From, tr.To)
		}
		if tr.Event != semantics.EventPassBy {
			t.Errorf("inferred event = %v", tr.Event)
		}
		if tr.Confidence <= 0 || tr.Confidence > 1 {
			t.Errorf("confidence = %v", tr.Confidence)
		}
		if tr.FirstIdx != -1 || tr.LastIdx != -1 {
			t.Error("inferred triplet should not claim record indexes")
		}
	}
	// The original triplets survive unmodified.
	if out.Triplets[0].Region != "Adidas" || out.Triplets[out.Len()-1].Region != "Cashier" {
		t.Errorf("original triplets disturbed: %v", out.Triplets)
	}
}

func TestComplementSkipsSmallGapsAndUntagged(t *testing.T) {
	m := testvenue.MustTwoFloor()
	k := BuildKnowledge(m, observedSeqs(), 2*time.Minute)
	c := NewComplementor(m, k)

	// 1-minute gap: below threshold.
	s := semantics.NewSequence("oi")
	s.Append(trip(semantics.EventStay, "rg-adidas", "Adidas", 0, 5*time.Minute))
	s.Append(trip(semantics.EventStay, "rg-nike", "Nike", 6*time.Minute, 10*time.Minute))
	if _, n := c.Complement(s); n != 0 {
		t.Errorf("small gap complemented: %d", n)
	}

	// Untagged endpoint: skipped.
	s2 := semantics.NewSequence("oi")
	s2.Append(trip(semantics.EventStay, "", "Hall 2F", 0, 5*time.Minute))
	s2.Append(trip(semantics.EventStay, "rg-nike", "Nike", 30*time.Minute, 40*time.Minute))
	if _, n := c.Complement(s2); n != 0 {
		t.Errorf("untagged gap complemented: %d", n)
	}

	// Empty sequence passes through.
	if out, n := c.Complement(semantics.NewSequence("e")); n != 0 || out.Len() != 0 {
		t.Error("empty sequence mishandled")
	}
}

func TestComplementAdjacentRegionsInsertNothing(t *testing.T) {
	m := testvenue.MustTwoFloor()
	k := BuildKnowledge(m, observedSeqs(), 2*time.Minute)
	c := NewComplementor(m, k)
	// Adidas and Hall are adjacent: the MAP path has no interior.
	s := semantics.NewSequence("oi")
	s.Append(trip(semantics.EventStay, "rg-adidas", "Adidas", 0, 5*time.Minute))
	s.Append(trip(semantics.EventStay, "rg-hall", "Center Hall", 30*time.Minute, 40*time.Minute))
	if _, n := c.Complement(s); n != 0 {
		t.Errorf("adjacent-region gap inserted %d triplets", n)
	}
}

func TestComplementCrossFloor(t *testing.T) {
	m := testvenue.MustTwoFloor()
	k := BuildKnowledge(m, observedSeqs(), 2*time.Minute)
	c := NewComplementor(m, k)
	// Adidas (1F) to Books (2F): the path must route via regions covering
	// the staircase — but no region covers the stairs in the test venue,
	// so adjacency comes from the hall chain; verify we get a connected
	// in-between or cleanly nothing (never a wrong-floor teleport claim).
	s := semantics.NewSequence("oi")
	s.Append(trip(semantics.EventStay, "rg-adidas", "Adidas", 0, 5*time.Minute))
	s.Append(trip(semantics.EventStay, "rg-books", "Books", 30*time.Minute, 40*time.Minute))
	out, n := c.Complement(s)
	if n > 0 {
		// Any inferred region must be adjacent to its predecessor.
		for i := 1; i < out.Len(); i++ {
			a, b := out.Triplets[i-1].RegionID, out.Triplets[i].RegionID
			if a == "" || b == "" {
				continue
			}
			adj := false
			for _, x := range m.AdjacentRegions(a) {
				if x == b {
					adj = true
				}
			}
			if !adj && a != b {
				t.Errorf("inferred chain breaks adjacency: %s → %s", a, b)
			}
		}
	}
}

func TestUniformPriorAblation(t *testing.T) {
	m := testvenue.MustTwoFloor()
	k := BuildKnowledge(m, observedSeqs(), 2*time.Minute)

	learned := NewComplementor(m, k)
	uniform := NewComplementor(m, k)
	uniform.UniformPrior = true

	// The majority route in the training data is Adidas → Hall → Nike;
	// the learned prior should be more confident than uniform there.
	s := semantics.NewSequence("oi")
	s.Append(trip(semantics.EventStay, "rg-adidas", "Adidas", 0, 5*time.Minute))
	s.Append(trip(semantics.EventStay, "rg-nike", "Nike", 15*time.Minute, 20*time.Minute))

	outL, nL := learned.Complement(s)
	outU, nU := uniform.Complement(s)
	if nL == 0 || nU == 0 {
		t.Fatalf("complement counts: learned %d uniform %d", nL, nU)
	}
	confL := outL.Triplets[1].Confidence
	confU := outU.Triplets[1].Confidence
	if confL <= confU {
		t.Errorf("learned confidence %v should exceed uniform %v on the majority route", confL, confU)
	}
	// And on a rarely-taken route the learned prior is less confident than
	// on the majority route — the knowledge is actually differentiating.
	s2 := semantics.NewSequence("oi")
	s2.Append(trip(semantics.EventStay, "rg-adidas", "Adidas", 0, 5*time.Minute))
	s2.Append(trip(semantics.EventStay, "rg-cashier", "Cashier", 15*time.Minute, 20*time.Minute))
	outRare, nRare := learned.Complement(s2)
	if nRare == 0 {
		t.Fatal("rare route not complemented")
	}
	if outRare.Triplets[1].Confidence >= confL {
		t.Errorf("rare-route confidence %v should be below majority-route %v",
			outRare.Triplets[1].Confidence, confL)
	}
}

func TestMapPathSameRegion(t *testing.T) {
	m := testvenue.MustTwoFloor()
	c := NewComplementor(m, BuildKnowledge(m, nil, 0))
	path, conf := c.mapPath("rg-nike", "rg-nike")
	if len(path) != 1 || conf != 1 {
		t.Errorf("self path = %v, %v", path, conf)
	}
}

func TestMapPathHopBound(t *testing.T) {
	m := testvenue.MustTwoFloor()
	c := NewComplementor(m, BuildKnowledge(m, nil, 0))
	c.MaxHops = 1
	// Adidas→Cashier needs ≥2 hops; with MaxHops=1 it is unreachable
	// unless the two regions touch directly (they do not).
	if path, _ := c.mapPath("rg-adidas", "rg-cashier"); path != nil {
		// If a direct geometric adjacency existed the path would be the
		// two endpoints; anything longer violates the bound.
		if len(path) > 2 {
			t.Errorf("hop bound violated: %v", path)
		}
	}
}
