// Package complement implements the Complementing layer of the TRIPS
// three-layer translation framework (paper Fig. 3) — the Mobility Semantics
// Complementor module.
//
// "The Complementing layer recovers the missing mobility semantics between
// two consecutive yet temporally far apart mobility semantics to make the
// output sequence complete. A knowledge construction aggregates the mobility
// semantics already annotated to build the prior mobility knowledge that
// captures the transition probabilities between semantic regions. Next, by a
// maximum a posteriori estimation, a mobility semantics inference utilizes
// the mobility knowledge to infer the most-likely mobility semantics between
// two semantic regions involved in the intermediate result."
//
// Knowledge is a first-order Markov model over semantic regions, restricted
// to the DSM's region-adjacency graph and Laplace-smoothed so unseen but
// topologically possible transitions stay reachable. Inference is a Viterbi
// -style shortest path under -log transition probability.
package complement

import (
	"container/heap"
	"math"
	"time"

	"trips/internal/dsm"
	"trips/internal/semantics"
)

// Knowledge is the prior mobility knowledge: region transition statistics
// aggregated from already-annotated sequences.
type Knowledge struct {
	model *dsm.Model
	// counts[a][b] is the number of observed direct transitions a→b.
	counts map[dsm.RegionID]map[dsm.RegionID]float64
	// totals[a] is the summed outgoing count of a.
	totals map[dsm.RegionID]float64
	// observations is the total number of transitions aggregated.
	observations int
}

// BuildKnowledge aggregates transition statistics from the observed (non-
// inferred) triplets of the given semantics sequences. Consecutive triplets
// count as a transition when both carry a region ID and the hand-off gap is
// at most joinGap (transitions across long dropouts are exactly what we must
// NOT learn as direct).
func BuildKnowledge(m *dsm.Model, seqs []*semantics.Sequence, joinGap time.Duration) *Knowledge {
	k := &Knowledge{
		model:  m,
		counts: make(map[dsm.RegionID]map[dsm.RegionID]float64),
		totals: make(map[dsm.RegionID]float64),
	}
	if joinGap <= 0 {
		joinGap = 2 * time.Minute
	}
	for _, s := range seqs {
		prev := -1
		for i, tr := range s.Triplets {
			if tr.Inferred || tr.RegionID == "" {
				continue
			}
			if prev >= 0 {
				pt := s.Triplets[prev]
				if tr.From.Sub(pt.To) <= joinGap && pt.RegionID != tr.RegionID {
					k.add(pt.RegionID, tr.RegionID)
				}
			}
			prev = i
		}
	}
	return k
}

// NewKnowledge returns an empty knowledge store for incremental aggregation.
// The online engine grows it one transition at a time as triplets are
// emitted, instead of the batch BuildKnowledge pass.
func NewKnowledge(m *dsm.Model) *Knowledge {
	return &Knowledge{
		model:  m,
		counts: make(map[dsm.RegionID]map[dsm.RegionID]float64),
		totals: make(map[dsm.RegionID]float64),
	}
}

// Add records one observed direct transition a→b. Callers own any
// synchronization; Knowledge itself is not safe for concurrent mutation.
func (k *Knowledge) Add(a, b dsm.RegionID) { k.add(a, b) }

// Observe records the transition between two consecutive observed triplets
// when both carry a region and the hand-off gap is at most joinGap — the
// same admission rule BuildKnowledge applies.
func (k *Knowledge) Observe(prev, next semantics.Triplet, joinGap time.Duration) {
	if joinGap <= 0 {
		joinGap = 2 * time.Minute
	}
	if prev.Inferred || next.Inferred || prev.RegionID == "" || next.RegionID == "" {
		return
	}
	if next.From.Sub(prev.To) <= joinGap && prev.RegionID != next.RegionID {
		k.add(prev.RegionID, next.RegionID)
	}
}

func (k *Knowledge) add(a, b dsm.RegionID) {
	row, ok := k.counts[a]
	if !ok {
		row = make(map[dsm.RegionID]float64)
		k.counts[a] = row
	}
	row[b]++
	k.totals[a]++
	k.observations++
}

// Observations returns the number of aggregated transitions.
func (k *Knowledge) Observations() int { return k.observations }

// TransitionProb returns the Laplace-smoothed probability of moving directly
// from region a to region b. Transitions outside the DSM region adjacency
// have probability zero: mobility knowledge cannot overrule walls.
func (k *Knowledge) TransitionProb(a, b dsm.RegionID) float64 {
	neighbors := k.model.AdjacentRegions(a)
	if len(neighbors) == 0 {
		return 0
	}
	adjacent := false
	for _, n := range neighbors {
		if n == b {
			adjacent = true
			break
		}
	}
	if !adjacent {
		return 0
	}
	// Laplace smoothing with alpha=1 over the neighbor set.
	alpha := 1.0
	num := alpha
	if row, ok := k.counts[a]; ok {
		num += row[b]
	}
	return num / (k.totals[a] + alpha*float64(len(neighbors)))
}

// MostLikelyNext returns b's neighbor with the highest transition
// probability, for diagnostics and the viewer's "likely destination" tip.
func (k *Knowledge) MostLikelyNext(a dsm.RegionID) (dsm.RegionID, float64) {
	var best dsm.RegionID
	bestP := 0.0
	for _, n := range k.model.AdjacentRegions(a) {
		if p := k.TransitionProb(a, n); p > bestP {
			best, bestP = n, p
		}
	}
	return best, bestP
}

// Complementor fills the gaps of annotated semantics sequences.
type Complementor struct {
	Model *dsm.Model
	Know  *Knowledge

	// MaxGap is the discontinuity threshold: gaps longer than this get
	// complemented. Default 3 minutes.
	MaxGap time.Duration

	// MaxHops bounds the inferred path length between the two regions
	// (default 8), keeping inference local.
	MaxHops int

	// UniformPrior ignores the learned counts and uses a uniform
	// distribution over region neighbors — the ablation showing what the
	// mobility knowledge buys (E4c).
	UniformPrior bool
}

// NewComplementor returns a complementor with default thresholds.
func NewComplementor(m *dsm.Model, k *Knowledge) *Complementor {
	return &Complementor{Model: m, Know: k, MaxGap: 3 * time.Minute, MaxHops: 8}
}

// Complement returns a copy of s with inferred triplets inserted into every
// qualifying gap, plus the number of triplets inserted.
func (c *Complementor) Complement(s *semantics.Sequence) (*semantics.Sequence, int) {
	out := semantics.NewSequence(s.Device)
	maxGap := c.MaxGap
	if maxGap <= 0 {
		maxGap = 3 * time.Minute
	}
	inserted := 0
	for i, tr := range s.Triplets {
		if i > 0 {
			prev := s.Triplets[i-1]
			if tr.From.Sub(prev.To) > maxGap && prev.RegionID != "" && tr.RegionID != "" {
				for _, inf := range c.inferGap(prev, tr) {
					out.Append(inf)
					inserted++
				}
			}
		}
		out.Append(tr)
	}
	return out, inserted
}

// inferGap produces the inferred triplets between a and b: the interior
// regions of the MAP path, with the gap time split evenly across them.
func (c *Complementor) inferGap(a, b semantics.Triplet) []semantics.Triplet {
	path, prob := c.mapPath(a.RegionID, b.RegionID)
	if len(path) <= 2 {
		return nil // adjacent or unreachable: nothing to insert
	}
	interior := path[1 : len(path)-1]
	gap := b.From.Sub(a.To)
	share := gap / time.Duration(len(interior))
	out := make([]semantics.Triplet, 0, len(interior))
	for i, rid := range interior {
		reg := c.Model.Region(rid)
		if reg == nil {
			continue
		}
		from := a.To.Add(time.Duration(i) * share)
		to := from.Add(share)
		out = append(out, semantics.Triplet{
			Event:      semantics.EventPassBy,
			Region:     reg.Tag,
			RegionID:   rid,
			From:       from,
			To:         to,
			Inferred:   true,
			FirstIdx:   -1,
			LastIdx:    -1,
			Display:    reg.Center(),
			Floor:      reg.Floor,
			Confidence: prob,
		})
	}
	return out
}

// mapPath returns the maximum-a-posteriori region path from a to b over the
// adjacency graph (inclusive of endpoints) and the geometric-mean step
// probability as a confidence proxy. Shortest path under -log P with a hop
// bound.
func (c *Complementor) mapPath(a, b dsm.RegionID) ([]dsm.RegionID, float64) {
	if a == b {
		return []dsm.RegionID{a}, 1
	}
	maxHops := c.MaxHops
	if maxHops <= 0 {
		maxHops = 8
	}
	dist := map[state]float64{}
	prev := map[state]state{}
	pq := &stateHeap{}
	start := state{a, 0}
	dist[start] = 0
	heap.Push(pq, stateItem{start, 0})
	var goal state
	found := false
	for pq.Len() > 0 {
		it := heap.Pop(pq).(stateItem)
		if it.cost > dist[it.s]+1e-12 {
			continue
		}
		if it.s.region == b {
			goal, found = it.s, true
			break
		}
		if it.s.hops >= maxHops {
			continue
		}
		for _, n := range c.Model.AdjacentRegions(it.s.region) {
			p := c.stepProb(it.s.region, n)
			if p <= 0 {
				continue
			}
			ns := state{n, it.s.hops + 1}
			nc := it.cost - math.Log(p)
			if d, ok := dist[ns]; !ok || nc < d {
				dist[ns] = nc
				prev[ns] = it.s
				heap.Push(pq, stateItem{ns, nc})
			}
		}
	}
	if !found {
		return nil, 0
	}
	var rev []dsm.RegionID
	for s := goal; ; {
		rev = append(rev, s.region)
		p, ok := prev[s]
		if !ok {
			break
		}
		s = p
	}
	path := make([]dsm.RegionID, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	steps := float64(len(path) - 1)
	conf := math.Exp(-dist[goal] / steps) // geometric mean step probability
	return path, conf
}

// stepProb is the transition probability under the configured prior.
func (c *Complementor) stepProb(a, b dsm.RegionID) float64 {
	if c.UniformPrior || c.Know == nil {
		n := len(c.Model.AdjacentRegions(a))
		if n == 0 {
			return 0
		}
		adjacent := false
		for _, x := range c.Model.AdjacentRegions(a) {
			if x == b {
				adjacent = true
				break
			}
		}
		if !adjacent {
			return 0
		}
		return 1 / float64(n)
	}
	return c.Know.TransitionProb(a, b)
}

// state is a Viterbi search state: a region reached in a number of hops.
type state struct {
	region dsm.RegionID
	hops   int
}

type stateItem struct {
	s    state
	cost float64
}

type stateHeap []stateItem

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *stateHeap) Push(x interface{}) { *h = append(*h, x.(stateItem)) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
