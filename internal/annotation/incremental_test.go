package annotation

import (
	"reflect"
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/testvenue"
)

// growAnnotator builds an annotator over the two-floor venue with a trained
// stay/pass-by model.
func growAnnotator(t *testing.T, cfg Config) *Annotator {
	t.Helper()
	m := testvenue.MustTwoFloor()
	em, err := TrainEventModel(trainingSet(t), NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	return NewAnnotator(m, em, cfg)
}

func assertSameAnnotation(t *testing.T, seed uint32, step int, inc, full []semantics.Triplet) {
	t.Helper()
	if len(inc) != len(full) {
		t.Fatalf("seed %d step %d: %d triplets incremental, %d full", seed, step, len(inc), len(full))
	}
	for i := range full {
		if !reflect.DeepEqual(inc[i], full[i]) {
			t.Fatalf("seed %d step %d: triplet %d differs:\nincremental: %+v\nfull:        %+v", seed, step, i, inc[i], full[i])
		}
	}
}

// TestIncrementalAnnotateMatchesFull drives randomized growing sequences —
// dwells, hall walks, floor flips, dropout gaps, and bounded out-of-order
// inserts — through Incremental.Annotate with a trailing-lag stable hint
// and asserts the output equals a from-scratch Annotate after every step.
func TestIncrementalAnnotateMatchesFull(t *testing.T) {
	for _, cfg := range []Config{DefaultConfig(), func() Config {
		c := DefaultConfig()
		c.Split.DisableHeadMerge = true // the trimmed-tail variant the engine uses
		c.MergeGap = 0
		return c
	}()} {
		a := growAnnotator(t, cfg)
		for seed := uint32(1); seed <= 8; seed++ {
			st := seed
			next := func(mod uint32) uint32 { st = st*1664525 + 1013904223; return (st >> 8) % mod }
			inc := a.NewIncremental()
			s := position.NewSequence("d")
			at := t0
			const lag = 3 * time.Minute
			stable := 0
			reused := false
			for step := 0; step < 25; step++ {
				burst := int(next(20)) + 1
				for i := 0; i < burst; i++ {
					var p geom.Point
					fl := dsm.FloorID(1)
					switch next(10) {
					case 0, 1, 2: // hall walk
						p = geom.Pt(2+float64(next(28)), 3+float64(next(4)))
					case 3: // second floor dwell
						p = geom.Pt(5+float64(next(3)), 14+float64(next(3)))
						fl = 2
					default: // dwell near a shop
						p = geom.Pt(4+float64(next(4)), 13+float64(next(5)))
					}
					rt := at
					if next(9) == 0 && stable > 0 {
						// Out-of-order insert behind the watermark but after
						// the stable boundary.
						back := time.Duration(next(uint32(lag/time.Second))) * time.Second
						if cand := at.Add(-back); cand.After(s.Records[stable-1].At) {
							rt = cand
						}
					}
					s.Append(position.Record{Device: "d", P: p, Floor: fl, At: rt})
					step := time.Duration(3+int(next(5))) * time.Second
					if next(30) == 0 {
						step = 6 * time.Minute // dropout gap
					}
					at = at.Add(step)
				}
				got := inc.Annotate(s, stable)
				want := a.Annotate(s)
				assertSameAnnotation(t, seed, step, got.Triplets, want.Triplets)
				if stable > 0 {
					reused = true
				}
				// Next call's stable hint: records more than lag behind the
				// end existed this call and can no longer change or shift.
				floor := s.End().Add(-lag)
				stable = 0
				for stable < s.Len() && !s.Records[stable].At.After(floor) {
					stable++
				}
			}
			if !reused {
				t.Errorf("seed %d: stable hint never advanced; incremental path untested", seed)
			}
		}
	}
}

// TestIncrementalAnnotateUnchanged: re-annotating an unchanged sequence
// with stable == Len() (every record behind the admission floor — e.g. a
// provisional snapshot query between arrivals) must not panic and must
// still match the full annotation.
func TestIncrementalAnnotateUnchanged(t *testing.T) {
	a := growAnnotator(t, DefaultConfig())
	g := lcg(9)
	s := seqFrom(stayRecords(&g, geom.Pt(5, 15), 1, t0, 20, 5*time.Second))
	inc := a.NewIncremental()
	want := a.Annotate(s)
	got := inc.Annotate(s, 0)
	assertSameAnnotation(t, 0, 0, got.Triplets, want.Triplets)
	got = inc.Annotate(s, s.Len())
	assertSameAnnotation(t, 0, 1, got.Triplets, want.Triplets)
}

// TestIncrementalAnnotateReset: after Reset (or a shrunk sequence) the
// incremental annotator recovers with a full recompute.
func TestIncrementalAnnotateReset(t *testing.T) {
	a := growAnnotator(t, DefaultConfig())
	g := lcg(5)
	s := seqFrom(
		stayRecords(&g, geom.Pt(5, 15), 1, t0, 80, 5*time.Second),
		walkRecords(&g, geom.Pt(5, 7), geom.Pt(27, 7), 1, t0.Add(7*time.Minute), 2*time.Second),
		stayRecords(&g, geom.Pt(25, 15), 1, t0.Add(12*time.Minute), 80, 5*time.Second),
	)
	inc := a.NewIncremental()
	want := a.Annotate(s)
	got := inc.Annotate(s, 0)
	assertSameAnnotation(t, 0, 0, got.Triplets, want.Triplets)

	// Shrink to a trimmed suffix: the stale cache must not leak through.
	trimmed := &position.Sequence{Device: "d", Records: s.Records[100:]}
	got = inc.Annotate(trimmed, 0)
	want = a.Annotate(trimmed)
	assertSameAnnotation(t, 0, 1, got.Triplets, want.Triplets)

	inc.Reset()
	got = inc.Annotate(s, 0)
	want = a.Annotate(s)
	assertSameAnnotation(t, 0, 2, got.Triplets, want.Triplets)
}
