package annotation

import (
	"fmt"
	"sort"
	"time"

	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
)

// EventModel is the learning-based identification model: a classifier over
// movement features together with the scaler and the label↔event mapping.
// It is trained from the Event Editor's designated segments.
type EventModel struct {
	clf    Classifier
	scaler *Scaler
	labels []semantics.Event
}

// TrainEventModel fits the classifier on the training set. The classifier
// choice is the caller's (Gaussian NB by default elsewhere); every defined
// event needs at least one designated segment.
func TrainEventModel(ts events.TrainingSet, clf Classifier) (*EventModel, error) {
	if len(ts.Segments) == 0 {
		return nil, errNoData
	}
	byEvent := ts.ByEvent()
	labels := make([]semantics.Event, 0, len(byEvent))
	for ev := range byEvent {
		labels = append(labels, ev)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	if len(labels) < 2 {
		return nil, fmt.Errorf("annotation: need segments for ≥2 events, have %d", len(labels))
	}
	index := make(map[semantics.Event]int, len(labels))
	for i, ev := range labels {
		index[ev] = i
	}

	var X [][]float64
	var y []int
	for _, seg := range ts.Segments {
		X = append(X, FeaturizeRecords(seg.Records, segmentDense(seg.Records)))
		y = append(y, index[seg.Event])
	}
	scaler := FitScaler(X)
	if err := clf.Train(scaler.TransformAll(X), y); err != nil {
		return nil, err
	}
	return &EventModel{clf: clf, scaler: scaler, labels: labels}, nil
}

// segmentDense derives the density flag for a training segment by running
// the same density mask the splitter uses and taking the majority.
func segmentDense(recs []position.Record) bool {
	if len(recs) == 0 {
		return false
	}
	s := position.NewSequence(recs[0].Device)
	for _, r := range recs {
		s.Append(r)
	}
	mask := denseMask(s, DefaultSplitConfig())
	cnt := 0
	for _, d := range mask {
		if d {
			cnt++
		}
	}
	return cnt*2 >= len(mask)
}

// Identify classifies a snippet, returning the event and the model's
// confidence (the winning class probability).
func (m *EventModel) Identify(sn Snippet) (semantics.Event, float64) {
	x := m.scaler.Transform(Featurize(sn))
	label, probs := m.clf.Predict(x)
	conf := 0.0
	if label < len(probs) {
		conf = probs[label]
	}
	return m.labels[label], conf
}

// Events returns the events the model can identify, sorted.
func (m *EventModel) Events() []semantics.Event {
	return append([]semantics.Event(nil), m.labels...)
}

// ModelName reports the underlying classifier.
func (m *EventModel) ModelName() string { return m.clf.Name() }

// DisplayPolicy selects the triplet display point (paper footnote 1: "the
// temporally middle or the spatially central positioning location according
// to the user configuration").
type DisplayPolicy string

// Display policies.
const (
	DisplayTemporalMiddle DisplayPolicy = "temporal-middle"
	DisplaySpatialCentral DisplayPolicy = "spatial-central"
)

// Config parameterizes the Annotator.
type Config struct {
	Split   SplitConfig
	Display DisplayPolicy
	// MinConfidence demotes identifications below the threshold to
	// EventUnknown rather than asserting a wrong event (0 keeps all).
	MinConfidence float64
	// MergeGap consolidates consecutive triplets that share the event and
	// the region and are separated by at most this gap — positioning noise
	// fragments one dwell into several snippets, and the consolidated
	// triplet is the semantics the analyst expects. Zero disables.
	MergeGap time.Duration
}

// DefaultConfig returns the standard annotator configuration.
func DefaultConfig() Config {
	return Config{Split: DefaultSplitConfig(), Display: DisplayTemporalMiddle, MergeGap: time.Minute}
}

// Annotator extracts mobility semantics from cleaned positioning sequences:
// density-based splitting, then per-snippet event identification and
// semantic-region matching.
type Annotator struct {
	Model  *dsm.Model
	Events *EventModel
	Cfg    Config
}

// NewAnnotator builds an annotator over a frozen DSM and a trained model.
func NewAnnotator(m *dsm.Model, em *EventModel, cfg Config) *Annotator {
	if cfg.Split.EpsSpace == 0 {
		cfg.Split = DefaultSplitConfig()
	}
	if cfg.Display == "" {
		cfg.Display = DisplayTemporalMiddle
	}
	return &Annotator{Model: m, Events: em, Cfg: cfg}
}

// regionSnippet is a snippet with its spatial annotation resolved.
type regionSnippet struct {
	sn  Snippet
	tag string
	rid dsm.RegionID
}

// Annotate translates a cleaned sequence into its original (pre-complement)
// mobility semantics sequence: split, spatially match, consolidate
// same-region fragments, then identify one event per consolidated snippet.
//
// Consolidation happens BEFORE event identification on purpose: positioning
// dropouts fragment one long dwell into several snippets, and duration-
// sensitive event patterns (a one-hour meeting vs a five-minute errand)
// can only be recognized on the whole dwell.
func (a *Annotator) Annotate(s *position.Sequence) *semantics.Sequence {
	out := semantics.NewSequence(string(s.Device))
	var groups []regionSnippet
	for _, sn := range a.refineByRegion(s, Split(s, a.Cfg.Split)) {
		tag, rid := a.matchRegion(sn)
		if n := len(groups); a.Cfg.MergeGap > 0 && n > 0 {
			prev := &groups[n-1]
			gap := sn.Records[0].At.Sub(prev.sn.Records[len(prev.sn.Records)-1].At)
			if prev.tag == tag && prev.rid == rid && prev.sn.Dense == sn.Dense && gap <= a.Cfg.MergeGap {
				prev.sn = joinSnippets(s, prev.sn, sn)
				continue
			}
		}
		groups = append(groups, regionSnippet{sn: sn, tag: tag, rid: rid})
	}
	for _, g := range groups {
		out.Append(a.annotateSnippet(g))
	}
	return out
}

// refineByRegion splits snippets at persistent semantic-region changes: two
// adjacent dwells can share one density cluster (noise bridges neighboring
// shops), but their records vote for different regions. A boundary is kept
// only when both sides hold their region for at least minRun records, so
// single noisy strays do not fragment snippets.
func (a *Annotator) refineByRegion(s *position.Sequence, sns []Snippet) []Snippet {
	const minRun = 5
	var out []Snippet
	for _, sn := range sns {
		if len(sn.Records) < 2*minRun {
			out = append(out, sn)
			continue
		}
		// Per-record region labels, majority-smoothed over a 5-wide window
		// so boundary noise does not shred runs.
		raw := make([]dsm.RegionID, len(sn.Records))
		for i, r := range sn.Records {
			if reg := a.Model.RegionAt(r.P, r.Floor); reg != nil {
				raw[i] = reg.ID
			}
		}
		labels := make([]dsm.RegionID, len(raw))
		for i := range raw {
			lo, hi := i-2, i+3
			if lo < 0 {
				lo = 0
			}
			if hi > len(raw) {
				hi = len(raw)
			}
			votes := make(map[dsm.RegionID]int, 3)
			for _, l := range raw[lo:hi] {
				votes[l]++
			}
			// Deterministic majority: the record's own label wins ties it
			// participates in, otherwise the smallest ID does — map
			// iteration order must not decide snippet boundaries.
			best := raw[i]
			bestCnt := votes[best]
			for l, c := range votes {
				if c > bestCnt || (c == bestCnt && best != raw[i] && l < best) {
					best, bestCnt = l, c
				}
			}
			labels[i] = best
		}
		// Runs of identical smoothed labels; short runs merge backward.
		type run struct{ start, end int } // [start, end)
		var runs []run
		start := 0
		for i := 1; i <= len(labels); i++ {
			if i < len(labels) && labels[i] == labels[start] {
				continue
			}
			if i-start < minRun && len(runs) > 0 {
				runs[len(runs)-1].end = i
			} else {
				runs = append(runs, run{start, i})
			}
			start = i
		}
		// A leading short run merges forward.
		if len(runs) > 1 && runs[0].end-runs[0].start < minRun {
			runs[1].start = runs[0].start
			runs = runs[1:]
		}
		if len(runs) < 2 {
			out = append(out, sn)
			continue
		}
		cuts := make([]int, 0, len(runs)+1)
		for _, r := range runs {
			cuts = append(cuts, r.start)
		}
		cuts = append(cuts, len(sn.Records))
		for c := 1; c < len(cuts); c++ {
			lo, hi := cuts[c-1], cuts[c]-1
			out = append(out, Snippet{
				First:   sn.First + lo,
				Last:    sn.First + hi,
				Records: s.Records[sn.First+lo : sn.First+hi+1],
				Dense:   sn.Dense,
			})
		}
	}
	return out
}

// annotateSnippet builds one triplet from a region-resolved snippet.
func (a *Annotator) annotateSnippet(g regionSnippet) semantics.Triplet {
	sn := g.sn
	ev, conf := a.Events.Identify(sn)
	if a.Cfg.MinConfidence > 0 && conf < a.Cfg.MinConfidence {
		ev = semantics.EventUnknown
	}
	disp, floor := a.displayPoint(sn)
	return semantics.Triplet{
		Event:      ev,
		Region:     g.tag,
		RegionID:   g.rid,
		From:       sn.Records[0].At,
		To:         sn.Records[len(sn.Records)-1].At,
		FirstIdx:   sn.First,
		LastIdx:    sn.Last,
		Display:    disp,
		Floor:      floor,
		Confidence: conf,
	}
}

// matchRegion makes the spatial annotation: the semantic region covering the
// majority of the snippet's records. When no record falls in any region, the
// walkable partition of the snippet medoid names the annotation (so the
// triplet is still localized, just not semantically tagged).
func (a *Annotator) matchRegion(sn Snippet) (string, dsm.RegionID) {
	votes := make(map[dsm.RegionID]int)
	for _, r := range sn.Records {
		if reg := a.Model.RegionAt(r.P, r.Floor); reg != nil {
			votes[reg.ID]++
		}
	}
	if len(votes) > 0 {
		// Highest vote; ties resolve to the lexicographically first ID for
		// determinism.
		ids := make([]dsm.RegionID, 0, len(votes))
		for id := range votes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if votes[ids[i]] != votes[ids[j]] {
				return votes[ids[i]] > votes[ids[j]]
			}
			return ids[i] < ids[j]
		})
		best := a.Model.Region(ids[0])
		return best.Tag, best.ID
	}
	// Fall back to the medoid's partition.
	p, f := a.medoid(sn)
	if e := a.Model.Locate(p, f); e != nil {
		if e.Name != "" {
			return e.Name, ""
		}
		return string(e.ID), ""
	}
	return "Unknown", ""
}

// displayPoint picks the representative point per the configured policy.
func (a *Annotator) displayPoint(sn Snippet) (geom.Point, dsm.FloorID) {
	switch a.Cfg.Display {
	case DisplaySpatialCentral:
		return a.medoid(sn)
	default:
		r := sn.Records[len(sn.Records)/2]
		return r.P, r.Floor
	}
}

// medoid returns the record location closest to the snippet centroid.
func (a *Annotator) medoid(sn Snippet) (geom.Point, dsm.FloorID) {
	pts := make([]geom.Point, len(sn.Records))
	for i, r := range sn.Records {
		pts[i] = r.P
	}
	c := geom.Centroid(pts)
	best := 0
	bestD := pts[0].Dist2(c)
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Dist2(c); d < bestD {
			best, bestD = i, d
		}
	}
	return sn.Records[best].P, sn.Records[best].Floor
}
