package annotation

import (
	"fmt"
	"sort"
	"time"

	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/geom"
	"trips/internal/intern"
	"trips/internal/position"
	"trips/internal/semantics"
)

// EventModel is the learning-based identification model: a classifier over
// movement features together with the scaler and the label↔event mapping.
// It is trained from the Event Editor's designated segments.
type EventModel struct {
	clf    Classifier
	scaler *Scaler
	labels []semantics.Event
}

// TrainEventModel fits the classifier on the training set. The classifier
// choice is the caller's (Gaussian NB by default elsewhere); every defined
// event needs at least one designated segment.
func TrainEventModel(ts events.TrainingSet, clf Classifier) (*EventModel, error) {
	if len(ts.Segments) == 0 {
		return nil, errNoData
	}
	byEvent := ts.ByEvent()
	labels := make([]semantics.Event, 0, len(byEvent))
	//trips:commutative key collection; iteration order is erased by the sort below
	for ev := range byEvent {
		labels = append(labels, ev)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	if len(labels) < 2 {
		return nil, fmt.Errorf("annotation: need segments for ≥2 events, have %d", len(labels))
	}
	index := make(map[semantics.Event]int, len(labels))
	for i, ev := range labels {
		index[ev] = i
	}

	var X [][]float64
	var y []int
	for _, seg := range ts.Segments {
		X = append(X, FeaturizeRecords(seg.Records, segmentDense(seg.Records)))
		y = append(y, index[seg.Event])
	}
	scaler := FitScaler(X)
	if err := clf.Train(scaler.TransformAll(X), y); err != nil {
		return nil, err
	}
	return &EventModel{clf: clf, scaler: scaler, labels: labels}, nil
}

// segmentDense derives the density flag for a training segment by running
// the same density mask the splitter uses and taking the majority.
func segmentDense(recs []position.Record) bool {
	if len(recs) == 0 {
		return false
	}
	var cols position.Columns
	cols.Sync(recs, 0)
	mask := denseMask(&cols, DefaultSplitConfig())
	cnt := 0
	for _, d := range mask {
		if d {
			cnt++
		}
	}
	return cnt*2 >= len(mask)
}

// Identify classifies a snippet, returning the event and the model's
// confidence (the winning class probability).
func (m *EventModel) Identify(sn Snippet) (semantics.Event, float64) {
	return m.IdentifyWith(nil, sn)
}

// Scratch holds reusable buffers for repeated identification calls — one
// per caller, not safe for concurrent use. A nil *Scratch is valid and
// allocates per call.
type Scratch struct {
	feat   []float64
	scaled []float64
	pts    []geom.Point
	scores []float64
}

// IdentifyWith is Identify with caller-owned scratch buffers, so a caller
// classifying snippets in a loop (the online engine's flush path) does not
// reallocate feature vectors on every call.
func (m *EventModel) IdentifyWith(sc *Scratch, sn Snippet) (semantics.Event, float64) {
	var x []float64
	if sc == nil {
		x = m.scaler.Transform(Featurize(sn))
	} else {
		sc.feat = zeroed(sc.feat, NumFeatures)
		featurizeInto(sc.feat, &sc.pts, sn.Records, sn.Dense)
		sc.scaled = zeroed(sc.scaled, NumFeatures)
		x = m.scaler.transformInto(sc.scaled, sc.feat)
	}
	label, probs := m.predict(sc, x)
	conf := 0.0
	if label < len(probs) {
		conf = probs[label]
	}
	return m.labels[label], conf
}

// predict routes through the classifier's scratch-buffer fast path when the
// caller brought one: the probability vector then aliases sc.scores instead
// of being allocated per snippet.
func (m *EventModel) predict(sc *Scratch, x []float64) (int, []float64) {
	if sc != nil {
		if sp, ok := m.clf.(scratchPredictor); ok {
			return sp.predictScratch(x, &sc.scores)
		}
	}
	return m.clf.Predict(x)
}

// zeroed returns buf resized to n entries, all zero.
func zeroed(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Events returns the events the model can identify, sorted.
func (m *EventModel) Events() []semantics.Event {
	return append([]semantics.Event(nil), m.labels...)
}

// ModelName reports the underlying classifier.
func (m *EventModel) ModelName() string { return m.clf.Name() }

// DisplayPolicy selects the triplet display point (paper footnote 1: "the
// temporally middle or the spatially central positioning location according
// to the user configuration").
type DisplayPolicy string

// Display policies.
const (
	DisplayTemporalMiddle DisplayPolicy = "temporal-middle"
	DisplaySpatialCentral DisplayPolicy = "spatial-central"
)

// Config parameterizes the Annotator.
type Config struct {
	Split   SplitConfig
	Display DisplayPolicy
	// MinConfidence demotes identifications below the threshold to
	// EventUnknown rather than asserting a wrong event (0 keeps all).
	MinConfidence float64
	// MergeGap consolidates consecutive triplets that share the event and
	// the region and are separated by at most this gap — positioning noise
	// fragments one dwell into several snippets, and the consolidated
	// triplet is the semantics the analyst expects. Zero disables.
	MergeGap time.Duration
}

// DefaultConfig returns the standard annotator configuration.
func DefaultConfig() Config {
	return Config{Split: DefaultSplitConfig(), Display: DisplayTemporalMiddle, MergeGap: time.Minute}
}

// Annotator extracts mobility semantics from cleaned positioning sequences:
// density-based splitting, then per-snippet event identification and
// semantic-region matching.
type Annotator struct {
	Model  *dsm.Model
	Events *EventModel
	Cfg    Config
}

// NewAnnotator builds an annotator over a frozen DSM and a trained model.
func NewAnnotator(m *dsm.Model, em *EventModel, cfg Config) *Annotator {
	if cfg.Split.EpsSpace == 0 {
		cfg.Split = DefaultSplitConfig()
	}
	if cfg.Display == "" {
		cfg.Display = DisplayTemporalMiddle
	}
	return &Annotator{Model: m, Events: em, Cfg: cfg}
}

// regionSnippet is a snippet with its spatial annotation resolved.
type regionSnippet struct {
	sn  Snippet
	tag string
	rid dsm.RegionID
}

// Annotate translates a cleaned sequence into its original (pre-complement)
// mobility semantics sequence: split, spatially match, consolidate
// same-region fragments, then identify one event per consolidated snippet.
//
// Consolidation happens BEFORE event identification on purpose: positioning
// dropouts fragment one long dwell into several snippets, and duration-
// sensitive event patterns (a one-hour meeting vs a five-minute errand)
// can only be recognized on the whole dwell.
//
// For re-annotating a sequence that grows between calls, NewIncremental
// produces identical output in time proportional to the new suffix.
func (a *Annotator) Annotate(s *position.Sequence) *semantics.Sequence {
	out := semantics.NewSequence(string(s.Device))
	labels := a.labelRecords(s, nil, 0)
	var rs refineScratch
	refined := a.refineAndMatch(s, Split(s, a.Cfg.Split), labels, nil, &rs)
	for _, g := range a.consolidate(s, refined) {
		out.Append(a.annotateSnippet(g, nil))
	}
	return out
}

// labelRecords fills labels[from:] with the interned index of the semantic
// region covering each record (intern.None outside every region), growing
// labels to s.Len(). One shared label array feeds both the region-refinement
// smoothing and the majority vote of the spatial annotation. Region indexes
// are assigned in sorted-RegionID order, so comparing indexes compares IDs.
func (a *Annotator) labelRecords(s *position.Sequence, labels []intern.ID, from int) []intern.ID {
	n := s.Len()
	if cap(labels) < n {
		// Doubled-capacity growth: the incremental annotator calls this on
		// a tail that grows a few records per flush.
		grown := make([]intern.ID, n, 2*n)
		copy(grown, labels[:from])
		labels = grown
	} else {
		labels = labels[:n]
	}
	for i := from; i < n; i++ {
		r := s.Records[i]
		labels[i] = a.Model.RegionIdxAt(r.P, r.Floor)
	}
	return labels
}

// refineScratch holds the reusable buffers of the refine/match stage — the
// smoothing, run, and vote storage the incremental annotator would otherwise
// reallocate for every snippet it re-refines on every flush.
type refineScratch struct {
	smoothed []intern.ID
	runs     []labelRun
	cuts     []int
	votes    []int32     // per region index; cleared via touched after use
	touched  []intern.ID // region indexes dirtied in votes
}

// labelRun is a half-open run [start, end) of identical smoothed labels.
type labelRun struct{ start, end int }

// refineAndMatch refines every snippet at persistent region changes and
// resolves each refined snippet's spatial annotation, appending to out.
func (a *Annotator) refineAndMatch(s *position.Sequence, sns []Snippet, labels []intern.ID, out []regionSnippet, rs *refineScratch) []regionSnippet {
	for _, sn := range sns {
		out = a.refineSnippet(s, sn, labels, out, rs)
	}
	return out
}

// refineSnippet splits one snippet at persistent semantic-region changes:
// two adjacent dwells can share one density cluster (noise bridges
// neighboring shops), but their records vote for different regions. A
// boundary is kept only when both sides hold their region for at least
// minRun records, so single noisy strays do not fragment snippets. Each
// resulting sub-snippet is appended to out with its spatial annotation
// resolved.
func (a *Annotator) refineSnippet(s *position.Sequence, sn Snippet, labels []intern.ID, out []regionSnippet, rs *refineScratch) []regionSnippet {
	const minRun = 5
	emit := func(sub Snippet) []regionSnippet {
		tag, rid := a.matchRegion(sub, labels, rs)
		return append(out, regionSnippet{sn: sub, tag: tag, rid: rid})
	}
	if len(sn.Records) < 2*minRun {
		return emit(sn)
	}
	// Per-record region labels, majority-smoothed over a 5-wide window so
	// boundary noise does not shred runs.
	raw := labels[sn.First : sn.Last+1]
	if cap(rs.smoothed) < len(raw) {
		rs.smoothed = make([]intern.ID, len(raw))
	}
	smoothed := rs.smoothed[:len(raw)]
	for i := range raw {
		lo, hi := i-2, i+3
		if lo < 0 {
			lo = 0
		}
		if hi > len(raw) {
			hi = len(raw)
		}
		// At most five labels in the window: count the distinct ones in two
		// fixed arrays instead of a map.
		var wl [5]intern.ID
		var wc [5]int
		nw := 0
		for _, l := range raw[lo:hi] {
			j := 0
			for ; j < nw; j++ {
				if wl[j] == l {
					wc[j]++
					break
				}
			}
			if j == nw {
				wl[nw], wc[nw] = l, 1
				nw++
			}
		}
		// Deterministic majority: the record's own label wins ties it
		// participates in, otherwise the smallest index does — which is the
		// smallest region ID, since interning is in sorted-ID order.
		best := raw[i]
		bestCnt := 0
		for j := 0; j < nw; j++ {
			if wl[j] == best {
				bestCnt = wc[j]
				break
			}
		}
		for j := 0; j < nw; j++ {
			if l, c := wl[j], wc[j]; c > bestCnt || (c == bestCnt && best != raw[i] && l < best) {
				best, bestCnt = l, c
			}
		}
		smoothed[i] = best
	}
	// Runs of identical smoothed labels; short runs merge backward.
	runs := rs.runs[:0]
	start := 0
	for i := 1; i <= len(smoothed); i++ {
		if i < len(smoothed) && smoothed[i] == smoothed[start] {
			continue
		}
		if i-start < minRun && len(runs) > 0 {
			runs[len(runs)-1].end = i
		} else {
			runs = append(runs, labelRun{start, i})
		}
		start = i
	}
	rs.runs = runs // keep the full backing: the head-merge reslice below is local
	// A leading short run merges forward.
	if len(runs) > 1 && runs[0].end-runs[0].start < minRun {
		runs[1].start = runs[0].start
		runs = runs[1:]
	}
	if len(runs) < 2 {
		return emit(sn)
	}
	cuts := rs.cuts[:0]
	for _, r := range runs {
		cuts = append(cuts, r.start)
	}
	cuts = append(cuts, len(sn.Records))
	rs.cuts = cuts
	for c := 1; c < len(cuts); c++ {
		lo, hi := cuts[c-1], cuts[c]-1
		out = emit(Snippet{
			First:   sn.First + lo,
			Last:    sn.First + hi,
			Records: s.Records[sn.First+lo : sn.First+hi+1],
			Dense:   sn.Dense,
		})
	}
	return out
}

// consolidate merges consecutive refined snippets that share the event-
// relevant identity (tag, region, density) and sit within MergeGap of each
// other — the same-region consolidation of the Annotate pipeline.
func (a *Annotator) consolidate(s *position.Sequence, refined []regionSnippet) []regionSnippet {
	return a.consolidateInto(s, refined, nil)
}

// consolidateInto is consolidate appending into groups, so the incremental
// annotator can reuse one buffer across flushes.
func (a *Annotator) consolidateInto(s *position.Sequence, refined, groups []regionSnippet) []regionSnippet {
	for _, g := range refined {
		if n := len(groups); a.Cfg.MergeGap > 0 && n > 0 {
			prev := &groups[n-1]
			gap := g.sn.Records[0].At.Sub(prev.sn.Records[len(prev.sn.Records)-1].At)
			if prev.tag == g.tag && prev.rid == g.rid && prev.sn.Dense == g.sn.Dense && gap <= a.Cfg.MergeGap {
				prev.sn = joinSnippets(s, prev.sn, g.sn)
				continue
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// annotateSnippet builds one triplet from a region-resolved snippet. sc,
// when non-nil, provides reusable buffers for the feature extraction.
func (a *Annotator) annotateSnippet(g regionSnippet, sc *Scratch) semantics.Triplet {
	sn := g.sn
	ev, conf := a.Events.IdentifyWith(sc, sn)
	if a.Cfg.MinConfidence > 0 && conf < a.Cfg.MinConfidence {
		ev = semantics.EventUnknown
	}
	disp, floor := a.displayPoint(sn, sc)
	return semantics.Triplet{
		Event:      ev,
		Region:     g.tag,
		RegionID:   g.rid,
		From:       sn.Records[0].At,
		To:         sn.Records[len(sn.Records)-1].At,
		FirstIdx:   sn.First,
		LastIdx:    sn.Last,
		Display:    disp,
		Floor:      floor,
		Confidence: conf,
	}
}

// matchRegion makes the spatial annotation: the semantic region covering the
// majority of the snippet's records (labels holds the per-record interned
// region indexes for the whole sequence). When no record falls in any
// region, the walkable partition of the snippet medoid names the annotation
// (so the triplet is still localized, just not semantically tagged).
func (a *Annotator) matchRegion(sn Snippet, labels []intern.ID, rs *refineScratch) (string, dsm.RegionID) {
	if n := a.Model.NumRegions(); len(rs.votes) < n {
		rs.votes = make([]int32, n)
	}
	votes, touched := rs.votes, rs.touched[:0]
	for _, l := range labels[sn.First : sn.Last+1] {
		if l == intern.None {
			continue
		}
		if votes[l] == 0 {
			touched = append(touched, l)
		}
		votes[l]++
	}
	rs.touched = touched
	if len(touched) > 0 {
		// Highest vote; ties resolve to the smallest region index — the
		// lexicographically first ID, since interning is in sorted-ID order.
		best := touched[0]
		for _, id := range touched[1:] {
			if votes[id] > votes[best] || (votes[id] == votes[best] && id < best) {
				best = id
			}
		}
		for _, id := range touched {
			votes[id] = 0
		}
		r := a.Model.RegionByIdx(best)
		return r.Tag, r.ID
	}
	// Fall back to the medoid's partition.
	p, f := a.medoid(sn, nil)
	if e := a.Model.Locate(p, f); e != nil {
		if e.Name != "" {
			return e.Name, ""
		}
		return string(e.ID), ""
	}
	return "Unknown", ""
}

// displayPoint picks the representative point per the configured policy.
func (a *Annotator) displayPoint(sn Snippet, sc *Scratch) (geom.Point, dsm.FloorID) {
	switch a.Cfg.Display {
	case DisplaySpatialCentral:
		if sc != nil {
			return a.medoid(sn, &sc.pts)
		}
		return a.medoid(sn, nil)
	default:
		r := sn.Records[len(sn.Records)/2]
		return r.P, r.Floor
	}
}

// medoid returns the record location closest to the snippet centroid,
// borrowing *buf as point scratch when the caller brought one.
func (a *Annotator) medoid(sn Snippet, buf *[]geom.Point) (geom.Point, dsm.FloorID) {
	var local []geom.Point
	if buf == nil {
		buf = &local
	}
	pts := *buf
	if cap(pts) < len(sn.Records) {
		pts = make([]geom.Point, len(sn.Records))
	} else {
		pts = pts[:len(sn.Records)]
	}
	*buf = pts
	for i, r := range sn.Records {
		pts[i] = r.P
	}
	c := geom.Centroid(pts)
	best := 0
	bestD := pts[0].Dist2(c)
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Dist2(c); d < bestD {
			best, bestD = i, d
		}
	}
	return sn.Records[best].P, sn.Records[best].Floor
}
