package annotation

import (
	"fmt"
	"sort"
	"time"

	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
)

// EventModel is the learning-based identification model: a classifier over
// movement features together with the scaler and the label↔event mapping.
// It is trained from the Event Editor's designated segments.
type EventModel struct {
	clf    Classifier
	scaler *Scaler
	labels []semantics.Event
}

// TrainEventModel fits the classifier on the training set. The classifier
// choice is the caller's (Gaussian NB by default elsewhere); every defined
// event needs at least one designated segment.
func TrainEventModel(ts events.TrainingSet, clf Classifier) (*EventModel, error) {
	if len(ts.Segments) == 0 {
		return nil, errNoData
	}
	byEvent := ts.ByEvent()
	labels := make([]semantics.Event, 0, len(byEvent))
	//trips:commutative key collection; iteration order is erased by the sort below
	for ev := range byEvent {
		labels = append(labels, ev)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	if len(labels) < 2 {
		return nil, fmt.Errorf("annotation: need segments for ≥2 events, have %d", len(labels))
	}
	index := make(map[semantics.Event]int, len(labels))
	for i, ev := range labels {
		index[ev] = i
	}

	var X [][]float64
	var y []int
	for _, seg := range ts.Segments {
		X = append(X, FeaturizeRecords(seg.Records, segmentDense(seg.Records)))
		y = append(y, index[seg.Event])
	}
	scaler := FitScaler(X)
	if err := clf.Train(scaler.TransformAll(X), y); err != nil {
		return nil, err
	}
	return &EventModel{clf: clf, scaler: scaler, labels: labels}, nil
}

// segmentDense derives the density flag for a training segment by running
// the same density mask the splitter uses and taking the majority.
func segmentDense(recs []position.Record) bool {
	if len(recs) == 0 {
		return false
	}
	s := position.NewSequence(recs[0].Device)
	for _, r := range recs {
		s.Append(r)
	}
	mask := denseMask(s, DefaultSplitConfig())
	cnt := 0
	for _, d := range mask {
		if d {
			cnt++
		}
	}
	return cnt*2 >= len(mask)
}

// Identify classifies a snippet, returning the event and the model's
// confidence (the winning class probability).
func (m *EventModel) Identify(sn Snippet) (semantics.Event, float64) {
	return m.IdentifyWith(nil, sn)
}

// Scratch holds reusable buffers for repeated identification calls — one
// per caller, not safe for concurrent use. A nil *Scratch is valid and
// allocates per call.
type Scratch struct {
	feat   []float64
	scaled []float64
	pts    []geom.Point
}

// IdentifyWith is Identify with caller-owned scratch buffers, so a caller
// classifying snippets in a loop (the online engine's flush path) does not
// reallocate feature vectors on every call.
func (m *EventModel) IdentifyWith(sc *Scratch, sn Snippet) (semantics.Event, float64) {
	var x []float64
	if sc == nil {
		x = m.scaler.Transform(Featurize(sn))
	} else {
		sc.feat = zeroed(sc.feat, NumFeatures)
		featurizeInto(sc.feat, &sc.pts, sn.Records, sn.Dense)
		sc.scaled = zeroed(sc.scaled, NumFeatures)
		x = m.scaler.transformInto(sc.scaled, sc.feat)
	}
	label, probs := m.clf.Predict(x)
	conf := 0.0
	if label < len(probs) {
		conf = probs[label]
	}
	return m.labels[label], conf
}

// zeroed returns buf resized to n entries, all zero.
func zeroed(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Events returns the events the model can identify, sorted.
func (m *EventModel) Events() []semantics.Event {
	return append([]semantics.Event(nil), m.labels...)
}

// ModelName reports the underlying classifier.
func (m *EventModel) ModelName() string { return m.clf.Name() }

// DisplayPolicy selects the triplet display point (paper footnote 1: "the
// temporally middle or the spatially central positioning location according
// to the user configuration").
type DisplayPolicy string

// Display policies.
const (
	DisplayTemporalMiddle DisplayPolicy = "temporal-middle"
	DisplaySpatialCentral DisplayPolicy = "spatial-central"
)

// Config parameterizes the Annotator.
type Config struct {
	Split   SplitConfig
	Display DisplayPolicy
	// MinConfidence demotes identifications below the threshold to
	// EventUnknown rather than asserting a wrong event (0 keeps all).
	MinConfidence float64
	// MergeGap consolidates consecutive triplets that share the event and
	// the region and are separated by at most this gap — positioning noise
	// fragments one dwell into several snippets, and the consolidated
	// triplet is the semantics the analyst expects. Zero disables.
	MergeGap time.Duration
}

// DefaultConfig returns the standard annotator configuration.
func DefaultConfig() Config {
	return Config{Split: DefaultSplitConfig(), Display: DisplayTemporalMiddle, MergeGap: time.Minute}
}

// Annotator extracts mobility semantics from cleaned positioning sequences:
// density-based splitting, then per-snippet event identification and
// semantic-region matching.
type Annotator struct {
	Model  *dsm.Model
	Events *EventModel
	Cfg    Config
}

// NewAnnotator builds an annotator over a frozen DSM and a trained model.
func NewAnnotator(m *dsm.Model, em *EventModel, cfg Config) *Annotator {
	if cfg.Split.EpsSpace == 0 {
		cfg.Split = DefaultSplitConfig()
	}
	if cfg.Display == "" {
		cfg.Display = DisplayTemporalMiddle
	}
	return &Annotator{Model: m, Events: em, Cfg: cfg}
}

// regionSnippet is a snippet with its spatial annotation resolved.
type regionSnippet struct {
	sn  Snippet
	tag string
	rid dsm.RegionID
}

// Annotate translates a cleaned sequence into its original (pre-complement)
// mobility semantics sequence: split, spatially match, consolidate
// same-region fragments, then identify one event per consolidated snippet.
//
// Consolidation happens BEFORE event identification on purpose: positioning
// dropouts fragment one long dwell into several snippets, and duration-
// sensitive event patterns (a one-hour meeting vs a five-minute errand)
// can only be recognized on the whole dwell.
//
// For re-annotating a sequence that grows between calls, NewIncremental
// produces identical output in time proportional to the new suffix.
func (a *Annotator) Annotate(s *position.Sequence) *semantics.Sequence {
	out := semantics.NewSequence(string(s.Device))
	labels := a.labelRecords(s, nil, 0)
	refined := a.refineAndMatch(s, Split(s, a.Cfg.Split), labels, nil)
	for _, g := range a.consolidate(s, refined) {
		out.Append(a.annotateSnippet(g, nil))
	}
	return out
}

// labelRecords fills labels[from:] with the ID of the semantic region
// covering each record ("" outside every region), growing labels to
// s.Len(). One shared label array feeds both the region-refinement
// smoothing and the majority vote of the spatial annotation.
func (a *Annotator) labelRecords(s *position.Sequence, labels []dsm.RegionID, from int) []dsm.RegionID {
	n := s.Len()
	if cap(labels) < n {
		// Doubled-capacity growth: the incremental annotator calls this on
		// a tail that grows a few records per flush.
		grown := make([]dsm.RegionID, n, 2*n)
		copy(grown, labels[:from])
		labels = grown
	} else {
		labels = labels[:n]
	}
	for i := from; i < n; i++ {
		labels[i] = ""
		r := s.Records[i]
		if reg := a.Model.RegionAt(r.P, r.Floor); reg != nil {
			labels[i] = reg.ID
		}
	}
	return labels
}

// refineAndMatch refines every snippet at persistent region changes and
// resolves each refined snippet's spatial annotation, appending to out.
func (a *Annotator) refineAndMatch(s *position.Sequence, sns []Snippet, labels []dsm.RegionID, out []regionSnippet) []regionSnippet {
	for _, sn := range sns {
		out = a.refineSnippet(s, sn, labels, out)
	}
	return out
}

// refineSnippet splits one snippet at persistent semantic-region changes:
// two adjacent dwells can share one density cluster (noise bridges
// neighboring shops), but their records vote for different regions. A
// boundary is kept only when both sides hold their region for at least
// minRun records, so single noisy strays do not fragment snippets. Each
// resulting sub-snippet is appended to out with its spatial annotation
// resolved.
func (a *Annotator) refineSnippet(s *position.Sequence, sn Snippet, labels []dsm.RegionID, out []regionSnippet) []regionSnippet {
	const minRun = 5
	emit := func(sub Snippet) []regionSnippet {
		tag, rid := a.matchRegion(sub, labels)
		return append(out, regionSnippet{sn: sub, tag: tag, rid: rid})
	}
	if len(sn.Records) < 2*minRun {
		return emit(sn)
	}
	// Per-record region labels, majority-smoothed over a 5-wide window so
	// boundary noise does not shred runs.
	raw := labels[sn.First : sn.Last+1]
	smoothed := make([]dsm.RegionID, len(raw))
	for i := range raw {
		lo, hi := i-2, i+3
		if lo < 0 {
			lo = 0
		}
		if hi > len(raw) {
			hi = len(raw)
		}
		votes := make(map[dsm.RegionID]int, 3)
		for _, l := range raw[lo:hi] {
			votes[l]++
		}
		// Deterministic majority: the record's own label wins ties it
		// participates in, otherwise the smallest ID does — map
		// iteration order must not decide snippet boundaries.
		best := raw[i]
		bestCnt := votes[best]
		//trips:commutative max scan with a deterministic tie-break: the record's own label wins, else the smallest ID
		for l, c := range votes {
			if c > bestCnt || (c == bestCnt && best != raw[i] && l < best) {
				best, bestCnt = l, c
			}
		}
		smoothed[i] = best
	}
	// Runs of identical smoothed labels; short runs merge backward.
	type run struct{ start, end int } // [start, end)
	var runs []run
	start := 0
	for i := 1; i <= len(smoothed); i++ {
		if i < len(smoothed) && smoothed[i] == smoothed[start] {
			continue
		}
		if i-start < minRun && len(runs) > 0 {
			runs[len(runs)-1].end = i
		} else {
			runs = append(runs, run{start, i})
		}
		start = i
	}
	// A leading short run merges forward.
	if len(runs) > 1 && runs[0].end-runs[0].start < minRun {
		runs[1].start = runs[0].start
		runs = runs[1:]
	}
	if len(runs) < 2 {
		return emit(sn)
	}
	cuts := make([]int, 0, len(runs)+1)
	for _, r := range runs {
		cuts = append(cuts, r.start)
	}
	cuts = append(cuts, len(sn.Records))
	for c := 1; c < len(cuts); c++ {
		lo, hi := cuts[c-1], cuts[c]-1
		out = emit(Snippet{
			First:   sn.First + lo,
			Last:    sn.First + hi,
			Records: s.Records[sn.First+lo : sn.First+hi+1],
			Dense:   sn.Dense,
		})
	}
	return out
}

// consolidate merges consecutive refined snippets that share the event-
// relevant identity (tag, region, density) and sit within MergeGap of each
// other — the same-region consolidation of the Annotate pipeline.
func (a *Annotator) consolidate(s *position.Sequence, refined []regionSnippet) []regionSnippet {
	var groups []regionSnippet
	for _, g := range refined {
		if n := len(groups); a.Cfg.MergeGap > 0 && n > 0 {
			prev := &groups[n-1]
			gap := g.sn.Records[0].At.Sub(prev.sn.Records[len(prev.sn.Records)-1].At)
			if prev.tag == g.tag && prev.rid == g.rid && prev.sn.Dense == g.sn.Dense && gap <= a.Cfg.MergeGap {
				prev.sn = joinSnippets(s, prev.sn, g.sn)
				continue
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// annotateSnippet builds one triplet from a region-resolved snippet. sc,
// when non-nil, provides reusable buffers for the feature extraction.
func (a *Annotator) annotateSnippet(g regionSnippet, sc *Scratch) semantics.Triplet {
	sn := g.sn
	ev, conf := a.Events.IdentifyWith(sc, sn)
	if a.Cfg.MinConfidence > 0 && conf < a.Cfg.MinConfidence {
		ev = semantics.EventUnknown
	}
	disp, floor := a.displayPoint(sn)
	return semantics.Triplet{
		Event:      ev,
		Region:     g.tag,
		RegionID:   g.rid,
		From:       sn.Records[0].At,
		To:         sn.Records[len(sn.Records)-1].At,
		FirstIdx:   sn.First,
		LastIdx:    sn.Last,
		Display:    disp,
		Floor:      floor,
		Confidence: conf,
	}
}

// matchRegion makes the spatial annotation: the semantic region covering the
// majority of the snippet's records (labels holds the per-record region IDs
// for the whole sequence). When no record falls in any region, the walkable
// partition of the snippet medoid names the annotation (so the triplet is
// still localized, just not semantically tagged).
func (a *Annotator) matchRegion(sn Snippet, labels []dsm.RegionID) (string, dsm.RegionID) {
	votes := make(map[dsm.RegionID]int)
	for _, l := range labels[sn.First : sn.Last+1] {
		if l != "" {
			votes[l]++
		}
	}
	if len(votes) > 0 {
		// Highest vote; ties resolve to the lexicographically first ID for
		// determinism.
		ids := make([]dsm.RegionID, 0, len(votes))
		//trips:commutative key collection; iteration order is erased by the sort below
		for id := range votes {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if votes[ids[i]] != votes[ids[j]] {
				return votes[ids[i]] > votes[ids[j]]
			}
			return ids[i] < ids[j]
		})
		best := a.Model.Region(ids[0])
		return best.Tag, best.ID
	}
	// Fall back to the medoid's partition.
	p, f := a.medoid(sn)
	if e := a.Model.Locate(p, f); e != nil {
		if e.Name != "" {
			return e.Name, ""
		}
		return string(e.ID), ""
	}
	return "Unknown", ""
}

// displayPoint picks the representative point per the configured policy.
func (a *Annotator) displayPoint(sn Snippet) (geom.Point, dsm.FloorID) {
	switch a.Cfg.Display {
	case DisplaySpatialCentral:
		return a.medoid(sn)
	default:
		r := sn.Records[len(sn.Records)/2]
		return r.P, r.Floor
	}
}

// medoid returns the record location closest to the snippet centroid.
func (a *Annotator) medoid(sn Snippet) (geom.Point, dsm.FloorID) {
	pts := make([]geom.Point, len(sn.Records))
	for i, r := range sn.Records {
		pts[i] = r.P
	}
	c := geom.Centroid(pts)
	best := 0
	bestD := pts[0].Dist2(c)
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Dist2(c); d < bestD {
			best, bestD = i, d
		}
	}
	return sn.Records[best].P, sn.Records[best].Floor
}
