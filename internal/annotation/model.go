package annotation

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Classifier is a multiclass model over feature vectors. Labels are dense
// ints 0..K-1; the EventModel maps them to mobility events.
type Classifier interface {
	// Train fits the model. X rows are feature vectors, y parallel labels.
	Train(X [][]float64, y []int) error
	// Predict returns the most likely label and the per-class
	// probabilities (length K, summing to 1).
	Predict(x []float64) (int, []float64)
	// Name identifies the model in reports.
	Name() string
}

// errNoData is returned when training on an empty set.
var errNoData = errors.New("annotation: empty training set")

func validate(X [][]float64, y []int) (classes int, err error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, errNoData
	}
	k := 0
	for _, label := range y {
		if label < 0 {
			return 0, fmt.Errorf("annotation: negative label %d", label)
		}
		if label+1 > k {
			k = label + 1
		}
	}
	if k < 2 {
		return 0, fmt.Errorf("annotation: need at least 2 classes, got %d", k)
	}
	d := len(X[0])
	for i, x := range X {
		if len(x) != d {
			return 0, fmt.Errorf("annotation: row %d has %d features, want %d", i, len(x), d)
		}
	}
	return k, nil
}

// GaussianNB ---------------------------------------------------------------

// GaussianNB is a Gaussian naive Bayes classifier: each feature is modeled
// per class as an independent normal. Robust on small training sets, the
// default identification model.
type GaussianNB struct {
	classes int
	prior   []float64
	mean    [][]float64
	varr    [][]float64
}

// NewGaussianNB returns an untrained model.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "gaussian-nb" }

// Train implements Classifier.
func (g *GaussianNB) Train(X [][]float64, y []int) error {
	k, err := validate(X, y)
	if err != nil {
		return err
	}
	d := len(X[0])
	g.classes = k
	g.prior = make([]float64, k)
	g.mean = alloc2(k, d)
	g.varr = alloc2(k, d)
	counts := make([]float64, k)
	for i, x := range X {
		c := y[i]
		counts[c]++
		for j, v := range x {
			g.mean[c][j] += v
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.mean[c] {
			g.mean[c][j] /= counts[c]
		}
	}
	for i, x := range X {
		c := y[i]
		for j, v := range x {
			dv := v - g.mean[c][j]
			g.varr[c][j] += dv * dv
		}
	}
	for c := 0; c < k; c++ {
		g.prior[c] = counts[c] / float64(len(X))
		for j := range g.varr[c] {
			if counts[c] > 0 {
				g.varr[c][j] /= counts[c]
			}
			// Variance smoothing keeps degenerate features finite.
			g.varr[c][j] += 1e-6
		}
	}
	return nil
}

// Predict implements Classifier.
func (g *GaussianNB) Predict(x []float64) (int, []float64) {
	var scores []float64
	return g.predictScratch(x, &scores)
}

// predictScratch is Predict into a caller-owned score buffer: the returned
// probabilities alias *scores and are valid until the next call.
func (g *GaussianNB) predictScratch(x []float64, scores *[]float64) (int, []float64) {
	if g.classes == 0 {
		return 0, nil
	}
	logp := zeroed(*scores, g.classes)
	*scores = logp
	for c := 0; c < g.classes; c++ {
		lp := math.Log(g.prior[c] + 1e-12)
		for j, v := range x {
			m, s2 := g.mean[c][j], g.varr[c][j]
			lp += -0.5*math.Log(2*math.Pi*s2) - (v-m)*(v-m)/(2*s2)
		}
		logp[c] = lp
	}
	return softmaxInPlace(logp)
}

// LogisticRegression --------------------------------------------------------

// LogisticRegression is a multinomial logistic regression trained by
// full-batch gradient descent with L2 regularization. Feature vectors should
// be standardized (see Scaler) for stable convergence.
type LogisticRegression struct {
	// LearningRate and Epochs control the optimizer; zero values take the
	// defaults (0.1, 400).
	LearningRate float64
	Epochs       int
	// L2 is the ridge penalty (default 1e-3).
	L2 float64

	classes int
	w       [][]float64 // [class][feature+1], last column is the bias
}

// NewLogisticRegression returns a model with default hyperparameters.
func NewLogisticRegression() *LogisticRegression { return &LogisticRegression{} }

// Name implements Classifier.
func (lr *LogisticRegression) Name() string { return "logistic-regression" }

// Train implements Classifier.
func (lr *LogisticRegression) Train(X [][]float64, y []int) error {
	k, err := validate(X, y)
	if err != nil {
		return err
	}
	d := len(X[0])
	eta := lr.LearningRate
	if eta <= 0 {
		eta = 0.1
	}
	epochs := lr.Epochs
	if epochs <= 0 {
		epochs = 400
	}
	l2 := lr.L2
	if l2 <= 0 {
		l2 = 1e-3
	}
	lr.classes = k
	lr.w = alloc2(k, d+1)
	n := float64(len(X))

	grad := alloc2(k, d+1)
	for epoch := 0; epoch < epochs; epoch++ {
		for c := range grad {
			for j := range grad[c] {
				grad[c][j] = 0
			}
		}
		for i, x := range X {
			p := lr.probs(x)
			for c := 0; c < k; c++ {
				delta := p[c]
				if y[i] == c {
					delta -= 1
				}
				for j, v := range x {
					grad[c][j] += delta * v
				}
				grad[c][d] += delta
			}
		}
		for c := 0; c < k; c++ {
			for j := 0; j <= d; j++ {
				g := grad[c][j]/n + l2*lr.w[c][j]
				lr.w[c][j] -= eta * g
			}
		}
	}
	return nil
}

func (lr *LogisticRegression) probs(x []float64) []float64 {
	k := lr.classes
	scores := make([]float64, k)
	for c := 0; c < k; c++ {
		s := lr.w[c][len(x)]
		for j, v := range x {
			s += lr.w[c][j] * v
		}
		scores[c] = s
	}
	_, p := softmaxArgmax(scores)
	return p
}

// Predict implements Classifier.
func (lr *LogisticRegression) Predict(x []float64) (int, []float64) {
	if lr.classes == 0 {
		return 0, nil
	}
	p := lr.probs(x)
	best := 0
	for c := range p {
		if p[c] > p[best] {
			best = c
		}
	}
	return best, p
}

// DecisionTree ---------------------------------------------------------------

// DecisionTree is a CART classifier with Gini impurity, axis-aligned splits,
// and depth / leaf-size stopping rules.
type DecisionTree struct {
	// MaxDepth bounds the tree (default 6); MinLeaf is the minimum samples
	// per leaf (default 2).
	MaxDepth int
	MinLeaf  int

	classes int
	root    *treeNode
}

type treeNode struct {
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
	probs   []float64 // leaf class distribution
}

// NewDecisionTree returns a tree with default hyperparameters.
func NewDecisionTree() *DecisionTree { return &DecisionTree{} }

// Name implements Classifier.
func (dt *DecisionTree) Name() string { return "decision-tree" }

// Train implements Classifier.
func (dt *DecisionTree) Train(X [][]float64, y []int) error {
	k, err := validate(X, y)
	if err != nil {
		return err
	}
	dt.classes = k
	if dt.MaxDepth <= 0 {
		dt.MaxDepth = 6
	}
	if dt.MinLeaf <= 0 {
		dt.MinLeaf = 2
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	dt.root = dt.build(X, y, idx, 0)
	return nil
}

func (dt *DecisionTree) build(X [][]float64, y []int, idx []int, depth int) *treeNode {
	probs := classDist(y, idx, dt.classes)
	node := &treeNode{probs: probs}
	if depth >= dt.MaxDepth || len(idx) < 2*dt.MinLeaf || pure(probs) {
		return node
	}
	bestGain, bestF, bestT := 0.0, -1, 0.0
	parent := gini(probs)
	d := len(X[0])
	vals := make([]float64, 0, len(idx))
	for f := 0; f < d; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		for v := 1; v < len(vals); v++ {
			if vals[v] == vals[v-1] {
				continue
			}
			t := (vals[v] + vals[v-1]) / 2
			g := dt.splitGain(X, y, idx, f, t, parent)
			if g > bestGain {
				bestGain, bestF, bestT = g, f, t
			}
		}
	}
	if bestF < 0 || bestGain < 1e-9 {
		return node
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestF] <= bestT {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < dt.MinLeaf || len(ri) < dt.MinLeaf {
		return node
	}
	node.feature, node.thresh = bestF, bestT
	node.left = dt.build(X, y, li, depth+1)
	node.right = dt.build(X, y, ri, depth+1)
	return node
}

func (dt *DecisionTree) splitGain(X [][]float64, y, idx []int, f int, t, parent float64) float64 {
	var lc, rc []int
	for _, i := range idx {
		if X[i][f] <= t {
			lc = append(lc, i)
		} else {
			rc = append(rc, i)
		}
	}
	if len(lc) == 0 || len(rc) == 0 {
		return 0
	}
	n := float64(len(idx))
	gl := gini(classDist(y, lc, dt.classes))
	gr := gini(classDist(y, rc, dt.classes))
	return parent - (float64(len(lc))/n)*gl - (float64(len(rc))/n)*gr
}

// Predict implements Classifier.
func (dt *DecisionTree) Predict(x []float64) (int, []float64) {
	if dt.root == nil {
		return 0, nil
	}
	node := dt.root
	for node.left != nil {
		if x[node.feature] <= node.thresh {
			node = node.left
		} else {
			node = node.right
		}
	}
	best := 0
	for c := range node.probs {
		if node.probs[c] > node.probs[best] {
			best = c
		}
	}
	return best, append([]float64(nil), node.probs...)
}

// helpers --------------------------------------------------------------------

func alloc2(r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
	}
	return m
}

func classDist(y, idx []int, k int) []float64 {
	p := make([]float64, k)
	for _, i := range idx {
		p[y[i]]++
	}
	for c := range p {
		p[c] /= float64(len(idx))
	}
	return p
}

func gini(p []float64) float64 {
	g := 1.0
	for _, v := range p {
		g -= v * v
	}
	return g
}

func pure(p []float64) bool {
	for _, v := range p {
		if v > 0.999 {
			return true
		}
	}
	return false
}

// scratchPredictor is the allocation-free fast path of a Classifier: predict
// into a caller-owned score buffer instead of allocating the probability
// vector per call. The returned probabilities alias the buffer and are valid
// until the next call.
type scratchPredictor interface {
	predictScratch(x []float64, scores *[]float64) (int, []float64)
}

// softmaxArgmax exponentiates scores stably, normalizes, and returns the
// argmax with the probability vector.
func softmaxArgmax(scores []float64) (int, []float64) {
	best := 0
	for i := range scores {
		if scores[i] > scores[best] {
			best = i
		}
	}
	mx := scores[best]
	p := make([]float64, len(scores))
	var sum float64
	for i, s := range scores {
		p[i] = math.Exp(s - mx)
		sum += p[i]
	}
	for i := range p {
		p[i] /= sum
	}
	return best, p
}

// softmaxInPlace is softmaxArgmax overwriting scores with the probabilities.
func softmaxInPlace(scores []float64) (int, []float64) {
	best := 0
	for i := range scores {
		if scores[i] > scores[best] {
			best = i
		}
	}
	mx := scores[best]
	var sum float64
	for i, s := range scores {
		scores[i] = math.Exp(s - mx)
		sum += scores[i]
	}
	for i := range scores {
		scores[i] /= sum
	}
	return best, scores
}

// CrossValidate computes k-fold accuracy of a fresh classifier produced by
// mk. It is used by the Event Editor to preview training-set quality and by
// the E4b experiment.
func CrossValidate(mk func() Classifier, X [][]float64, y []int, folds int) (float64, error) {
	if folds < 2 || len(X) < folds {
		return 0, fmt.Errorf("annotation: bad folds %d for %d samples", folds, len(X))
	}
	correct, total := 0, 0
	for f := 0; f < folds; f++ {
		var trX [][]float64
		var trY []int
		var teX [][]float64
		var teY []int
		for i := range X {
			if i%folds == f {
				teX = append(teX, X[i])
				teY = append(teY, y[i])
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		c := mk()
		if err := c.Train(trX, trY); err != nil {
			return 0, err
		}
		for i, x := range teX {
			if got, _ := c.Predict(x); got == teY[i] {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total), nil
}
