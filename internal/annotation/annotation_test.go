package annotation

import (
	"math"
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/events"
	"trips/internal/geom"
	"trips/internal/position"
	"trips/internal/semantics"
	"trips/internal/testvenue"
)

var t0 = time.Date(2017, 1, 2, 10, 0, 0, 0, time.UTC)

// lcg is a tiny deterministic generator for test jitter.
type lcg uint64

func (g *lcg) next() float64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return float64(*g>>11) / float64(1<<53)
}

// stayRecords emits n records jittered around center (dwelling).
func stayRecords(g *lcg, center geom.Point, floor dsm.FloorID, start time.Time, n int, period time.Duration) []position.Record {
	out := make([]position.Record, 0, n)
	for i := 0; i < n; i++ {
		p := geom.Pt(center.X+(g.next()-0.5)*2, center.Y+(g.next()-0.5)*2)
		out = append(out, position.Record{Device: "d", P: p, Floor: floor,
			At: start.Add(time.Duration(i) * period)})
	}
	return out
}

// walkRecords emits records moving from a to b at ~1.4 m/s.
func walkRecords(g *lcg, a, b geom.Point, floor dsm.FloorID, start time.Time, period time.Duration) []position.Record {
	dist := a.Dist(b)
	steps := int(dist/(1.4*period.Seconds())) + 1
	out := make([]position.Record, 0, steps+1)
	for i := 0; i <= steps; i++ {
		t := float64(i) / float64(steps)
		p := a.Lerp(b, t)
		p = geom.Pt(p.X+(g.next()-0.5)*0.8, p.Y+(g.next()-0.5)*0.8)
		out = append(out, position.Record{Device: "d", P: p, Floor: floor,
			At: start.Add(time.Duration(i) * period)})
	}
	return out
}

func seqFrom(recs ...[]position.Record) *position.Sequence {
	s := position.NewSequence("d")
	for _, rs := range recs {
		for _, r := range rs {
			s.Append(r)
		}
	}
	return s
}

// trainingSet builds a balanced stay/pass-by training set from synthetic
// segments in the test venue.
func trainingSet(t testing.TB) events.TrainingSet {
	t.Helper()
	g := lcg(42)
	ed := events.NewEditor()
	base := t0
	for i := 0; i < 8; i++ {
		stay := stayRecords(&g, geom.Pt(5, 15), 1, base, 40, 5*time.Second)
		if err := ed.AddSegment(events.LabeledSegment{Event: semantics.EventStay, Device: "tr", Records: stay}); err != nil {
			t.Fatal(err)
		}
		pass := walkRecords(&g, geom.Pt(2, 5), geom.Pt(30, 5), 1, base, 5*time.Second)
		if err := ed.AddSegment(events.LabeledSegment{Event: semantics.EventPassBy, Device: "tr", Records: pass}); err != nil {
			t.Fatal(err)
		}
		base = base.Add(time.Hour)
	}
	return ed.TrainingSet()
}

func TestSplitStayMovePattern(t *testing.T) {
	g := lcg(7)
	// stay 3 min → walk ≈20 s → stay 3 min.
	s := seqFrom(
		stayRecords(&g, geom.Pt(5, 15), 1, t0, 36, 5*time.Second),
		walkRecords(&g, geom.Pt(5, 15), geom.Pt(25, 15), 1, t0.Add(3*time.Minute+5*time.Second), 5*time.Second),
		stayRecords(&g, geom.Pt(25, 15), 1, t0.Add(4*time.Minute), 36, 5*time.Second),
	)
	sns := Split(s, DefaultSplitConfig())
	if len(sns) < 2 || len(sns) > 5 {
		t.Fatalf("snippets = %d, want 2–5", len(sns))
	}
	// Coverage: snippets tile the sequence exactly.
	idx := 0
	for _, sn := range sns {
		if sn.First != idx {
			t.Fatalf("snippet starts at %d, want %d", sn.First, idx)
		}
		idx = sn.Last + 1
	}
	if idx != s.Len() {
		t.Fatalf("snippets cover %d of %d records", idx, s.Len())
	}
	// First and last snippets are dense (stays).
	if !sns[0].Dense || !sns[len(sns)-1].Dense {
		t.Errorf("stay snippets not dense: first=%v last=%v", sns[0].Dense, sns[len(sns)-1].Dense)
	}
}

func TestSplitCutsOnFloorChange(t *testing.T) {
	g := lcg(9)
	s := seqFrom(
		stayRecords(&g, geom.Pt(37, 2), 1, t0, 20, 5*time.Second),
		stayRecords(&g, geom.Pt(37, 2), 2, t0.Add(2*time.Minute), 20, 5*time.Second),
	)
	sns := Split(s, DefaultSplitConfig())
	for _, sn := range sns {
		f := sn.Records[0].Floor
		for _, r := range sn.Records {
			if r.Floor != f {
				t.Fatal("snippet spans a floor change")
			}
		}
	}
}

func TestSplitCutsOnTimeGap(t *testing.T) {
	g := lcg(11)
	s := seqFrom(
		stayRecords(&g, geom.Pt(5, 15), 1, t0, 20, 5*time.Second),
		stayRecords(&g, geom.Pt(5, 15), 1, t0.Add(30*time.Minute), 20, 5*time.Second),
	)
	sns := Split(s, DefaultSplitConfig())
	if len(sns) < 2 {
		t.Fatalf("gap not cut: %d snippets", len(sns))
	}
}

func TestSplitEmptyAndSingle(t *testing.T) {
	if sns := Split(position.NewSequence("d"), DefaultSplitConfig()); sns != nil {
		t.Error("empty split should be nil")
	}
	s := position.NewSequence("d")
	s.Append(position.Record{Device: "d", P: geom.Pt(1, 1), Floor: 1, At: t0})
	sns := Split(s, DefaultSplitConfig())
	if len(sns) != 1 || sns[0].First != 0 || sns[0].Last != 0 {
		t.Errorf("single-record split = %+v", sns)
	}
}

func TestFeaturizeSeparatesStayFromWalk(t *testing.T) {
	g := lcg(5)
	stay := FeaturizeRecords(stayRecords(&g, geom.Pt(5, 15), 1, t0, 40, 5*time.Second), true)
	walk := FeaturizeRecords(walkRecords(&g, geom.Pt(2, 5), geom.Pt(30, 5), 1, t0, 5*time.Second), false)
	// Stay: small covering range, low mean speed. Walk: opposite.
	if stay[7] >= walk[7] {
		t.Errorf("covering range: stay %v !< walk %v", stay[7], walk[7])
	}
	if stay[5] >= walk[5] {
		t.Errorf("mean speed: stay %v !< walk %v", stay[5], walk[5])
	}
	if walk[10] <= stay[10] {
		t.Errorf("straightness: walk %v !> stay %v", walk[10], stay[10])
	}
	if len(stay) != NumFeatures || len(FeatureNames) != NumFeatures {
		t.Error("feature arity mismatch")
	}
	// Empty input gives a zero vector, not a panic.
	zero := FeaturizeRecords(nil, false)
	for _, v := range zero {
		if v != 0 {
			t.Error("empty featurize not zero")
		}
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 10, 5}, {3, 10, 7}, {5, 10, 9}}
	sc := FitScaler(X)
	Z := sc.TransformAll(X)
	// Column 0: mean 3, std sqrt(8/3).
	if math.Abs(Z[0][0]+Z[2][0]) > 1e-9 || Z[1][0] != 0 {
		t.Errorf("standardization wrong: %v", Z)
	}
	// Constant column maps to zero.
	for i := range Z {
		if Z[i][1] != 0 {
			t.Errorf("constant column scaled: %v", Z[i][1])
		}
	}
	// Empty scaler copies input.
	empty := FitScaler(nil)
	x := []float64{1, 2}
	got := empty.Transform(x)
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("empty scaler transform = %v", got)
	}
	got[0] = 99
	if x[0] == 99 {
		t.Error("empty scaler aliases input")
	}
}

// xorishData builds a small linearly separable dataset.
func separableData() ([][]float64, []int) {
	var X [][]float64
	var y []int
	for i := 0; i < 20; i++ {
		f := float64(i)
		X = append(X, []float64{f * 0.1, 1 - f*0.1})
		if i < 10 {
			y = append(y, 0)
		} else {
			y = append(y, 1)
		}
	}
	return X, y
}

func TestClassifiersOnSeparableData(t *testing.T) {
	X, y := separableData()
	for _, mk := range []func() Classifier{
		func() Classifier { return NewGaussianNB() },
		func() Classifier { return NewLogisticRegression() },
		func() Classifier { return NewDecisionTree() },
	} {
		c := mk()
		if err := c.Train(X, y); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		correct := 0
		for i, x := range X {
			got, probs := c.Predict(x)
			if got == y[i] {
				correct++
			}
			var sum float64
			for _, p := range probs {
				if p < -1e-9 || p > 1+1e-9 {
					t.Errorf("%s: probability %v out of range", c.Name(), p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Errorf("%s: probabilities sum to %v", c.Name(), sum)
			}
		}
		if correct < 18 {
			t.Errorf("%s: %d/20 correct on separable data", c.Name(), correct)
		}
	}
}

func TestClassifierValidation(t *testing.T) {
	for _, c := range []Classifier{NewGaussianNB(), NewLogisticRegression(), NewDecisionTree()} {
		if err := c.Train(nil, nil); err == nil {
			t.Errorf("%s: empty training accepted", c.Name())
		}
		if err := c.Train([][]float64{{1}, {2}}, []int{0, 0}); err == nil {
			t.Errorf("%s: single class accepted", c.Name())
		}
		if err := c.Train([][]float64{{1}, {2, 3}}, []int{0, 1}); err == nil {
			t.Errorf("%s: ragged rows accepted", c.Name())
		}
		if err := c.Train([][]float64{{1}, {2}}, []int{0, -1}); err == nil {
			t.Errorf("%s: negative label accepted", c.Name())
		}
	}
}

func TestThreeClassClassification(t *testing.T) {
	// Three well-separated Gaussian blobs.
	g := lcg(13)
	var X [][]float64
	var y []int
	centers := [][2]float64{{0, 0}, {10, 0}, {0, 10}}
	for c, ctr := range centers {
		for i := 0; i < 15; i++ {
			X = append(X, []float64{ctr[0] + g.next(), ctr[1] + g.next()})
			y = append(y, c)
		}
	}
	for _, c := range []Classifier{NewGaussianNB(), NewLogisticRegression(), NewDecisionTree()} {
		if err := c.Train(X, y); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if got, _ := c.Predict([]float64{10.5, 0.5}); got != 1 {
			t.Errorf("%s: blob 1 predicted %d", c.Name(), got)
		}
		if got, _ := c.Predict([]float64{0.5, 10.5}); got != 2 {
			t.Errorf("%s: blob 2 predicted %d", c.Name(), got)
		}
	}
}

func TestCrossValidate(t *testing.T) {
	X, y := separableData()
	acc, err := CrossValidate(func() Classifier { return NewGaussianNB() }, X, y, 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("cv accuracy = %v", acc)
	}
	if _, err := CrossValidate(func() Classifier { return NewGaussianNB() }, X, y, 1); err == nil {
		t.Error("folds=1 accepted")
	}
}

func TestTrainEventModel(t *testing.T) {
	ts := trainingSet(t)
	em, err := TrainEventModel(ts, NewGaussianNB())
	if err != nil {
		t.Fatalf("TrainEventModel: %v", err)
	}
	if em.ModelName() != "gaussian-nb" {
		t.Errorf("model name = %q", em.ModelName())
	}
	evs := em.Events()
	if len(evs) != 2 || evs[0] != semantics.EventPassBy || evs[1] != semantics.EventStay {
		t.Errorf("events = %v", evs)
	}
	// Identification on fresh segments.
	g := lcg(99)
	staySn := Snippet{Records: stayRecords(&g, geom.Pt(15, 15), 1, t0, 40, 5*time.Second), Dense: true}
	ev, conf := em.Identify(staySn)
	if ev != semantics.EventStay {
		t.Errorf("stay identified as %s (conf %v)", ev, conf)
	}
	passSn := Snippet{Records: walkRecords(&g, geom.Pt(2, 5), geom.Pt(30, 5), 1, t0, 5*time.Second)}
	ev, conf = em.Identify(passSn)
	if ev != semantics.EventPassBy {
		t.Errorf("pass-by identified as %s (conf %v)", ev, conf)
	}

	// Single-event training set fails.
	one := events.TrainingSet{Segments: ts.Segments[:1]}
	if _, err := TrainEventModel(one, NewGaussianNB()); err == nil {
		t.Error("single-event training set accepted")
	}
	if _, err := TrainEventModel(events.TrainingSet{}, NewGaussianNB()); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestAnnotateEndToEnd(t *testing.T) {
	m := testvenue.MustTwoFloor()
	em, err := TrainEventModel(trainingSet(t), NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnnotator(m, em, DefaultConfig())

	// Shopper: stays in Adidas, walks the hall, stays in Cashier.
	g := lcg(21)
	s := seqFrom(
		stayRecords(&g, geom.Pt(5, 15), 1, t0, 60, 5*time.Second), // Adidas 5 min
		walkRecords(&g, geom.Pt(5, 11), geom.Pt(25, 11), 1, t0.Add(5*time.Minute+5*time.Second), 5*time.Second),
		stayRecords(&g, geom.Pt(25, 15), 1, t0.Add(7*time.Minute), 60, 5*time.Second), // Cashier 5 min
	)
	sem := a.Annotate(s)
	if sem.Len() < 2 {
		t.Fatalf("semantics = %v", sem)
	}
	first, last := sem.Triplets[0], sem.Triplets[sem.Len()-1]
	if first.Region != "Adidas" || first.Event != semantics.EventStay {
		t.Errorf("first triplet = %v", first)
	}
	if last.Region != "Cashier" || last.Event != semantics.EventStay {
		t.Errorf("last triplet = %v", last)
	}
	// Index linkage back to records is consistent.
	for _, tr := range sem.Triplets {
		if tr.FirstIdx < 0 || tr.LastIdx >= s.Len() || tr.FirstIdx > tr.LastIdx {
			t.Errorf("bad index linkage: %+v", tr)
		}
		if tr.Confidence < 0 || tr.Confidence > 1 {
			t.Errorf("confidence out of range: %v", tr.Confidence)
		}
	}
}

func TestAnnotateDisplayPolicies(t *testing.T) {
	m := testvenue.MustTwoFloor()
	em, err := TrainEventModel(trainingSet(t), NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	g := lcg(31)
	s := seqFrom(stayRecords(&g, geom.Pt(15, 15), 1, t0, 40, 5*time.Second))

	cfgMid := DefaultConfig()
	aMid := NewAnnotator(m, em, cfgMid)
	semMid := aMid.Annotate(s)

	cfgCen := DefaultConfig()
	cfgCen.Display = DisplaySpatialCentral
	aCen := NewAnnotator(m, em, cfgCen)
	semCen := aCen.Annotate(s)

	if semMid.Len() == 0 || semCen.Len() == 0 {
		t.Fatal("no triplets")
	}
	// Both display points must be actual record locations.
	for _, sem := range []*semantics.Sequence{semMid, semCen} {
		for _, tr := range sem.Triplets {
			found := false
			for _, r := range s.Records {
				if r.P.Eq(tr.Display) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("display point %v is not a record location", tr.Display)
			}
		}
	}
}

func TestAnnotateMinConfidence(t *testing.T) {
	m := testvenue.MustTwoFloor()
	em, err := TrainEventModel(trainingSet(t), NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MinConfidence = 1.01 // nothing passes
	a := NewAnnotator(m, em, cfg)
	g := lcg(41)
	s := seqFrom(stayRecords(&g, geom.Pt(15, 15), 1, t0, 40, 5*time.Second))
	sem := a.Annotate(s)
	for _, tr := range sem.Triplets {
		if tr.Event != semantics.EventUnknown {
			t.Errorf("event %s above impossible threshold", tr.Event)
		}
	}
}

func TestMatchRegionFallback(t *testing.T) {
	m := testvenue.MustTwoFloor()
	em, err := TrainEventModel(trainingSet(t), NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnnotator(m, em, DefaultConfig())
	// Records on floor 2 hallway: H2 has no semantic region, so the
	// annotation falls back to the partition name.
	g := lcg(51)
	s := seqFrom(stayRecords(&g, geom.Pt(20, 5), 2, t0, 40, 5*time.Second))
	sem := a.Annotate(s)
	if sem.Len() == 0 {
		t.Fatal("no triplets")
	}
	if sem.Triplets[0].Region != "Hall 2F" {
		t.Errorf("fallback region = %q, want partition name", sem.Triplets[0].Region)
	}
	if sem.Triplets[0].RegionID != "" {
		t.Error("fallback should not claim a region ID")
	}
}
