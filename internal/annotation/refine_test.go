package annotation

import (
	"testing"
	"time"

	"trips/internal/geom"
	"trips/internal/semantics"
	"trips/internal/testvenue"
)

// TestRefineSplitsAdjacentDwells reproduces the failure mode that motivated
// region-boundary refinement: two dwells in adjacent shops share one density
// cluster when the positioning noise bridges the wall, and must still yield
// two distinct spatial annotations.
func TestRefineSplitsAdjacentDwells(t *testing.T) {
	m := testvenue.MustTwoFloor()
	em, err := TrainEventModel(trainingSet(t), NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnnotator(m, em, DefaultConfig())

	// Dwell near the Adidas side of the Adidas|Nike wall, then directly on
	// the Nike side: x ≈ 8 then x ≈ 12 (boundary at x = 10).
	g := lcg(77)
	s := seqFrom(
		stayRecords(&g, geom.Pt(8, 15), 1, t0, 60, 5*time.Second),
		stayRecords(&g, geom.Pt(12, 15), 1, t0.Add(5*time.Minute+5*time.Second), 60, 5*time.Second),
	)
	sem := a.Annotate(s)
	var regions []string
	for _, tr := range sem.Triplets {
		regions = append(regions, tr.Region)
	}
	hasAdidas, hasNike := false, false
	for _, r := range regions {
		if r == "Adidas" {
			hasAdidas = true
		}
		if r == "Nike" {
			hasNike = true
		}
	}
	if !hasAdidas || !hasNike {
		t.Errorf("adjacent dwells not separated: %v", regions)
	}
}

// TestConsolidationMergesFragments checks that one dwell fragmented by
// density flicker and short gaps comes out as a single triplet.
func TestConsolidationMergesFragments(t *testing.T) {
	m := testvenue.MustTwoFloor()
	em, err := TrainEventModel(trainingSet(t), NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnnotator(m, em, DefaultConfig())

	// One dwell with a 6-minute dropout in the middle: the splitter cuts
	// at gaps above its 5-minute MaxGap, so this yields two snippets. With
	// MergeGap above the dropout, consolidation reunites them.
	g := lcg(88)
	s := seqFrom(
		stayRecords(&g, geom.Pt(5, 15), 1, t0, 60, 5*time.Second),
		stayRecords(&g, geom.Pt(5, 15), 1, t0.Add(11*time.Minute), 60, 5*time.Second),
	)
	cfg := DefaultConfig()
	cfg.MergeGap = 7 * time.Minute
	aMerge := NewAnnotator(m, em, cfg)
	sem := aMerge.Annotate(s)
	stays := 0
	for _, tr := range sem.Triplets {
		if tr.Region == "Adidas" && tr.Event == semantics.EventStay {
			stays++
		}
	}
	if stays != 1 {
		t.Errorf("fragmented dwell yields %d Adidas stays, want 1: %v", stays, sem)
	}
	// Disabled merging keeps the fragments.
	cfg2 := DefaultConfig()
	cfg2.MergeGap = 0
	a2 := NewAnnotator(m, em, cfg2)
	sem2 := a2.Annotate(s)
	if sem2.Len() < 2 {
		t.Errorf("MergeGap=0 still merged: %v", sem2)
	}
	_ = a // the default annotator is exercised elsewhere in this file
}

// TestRefineKeepsIndexLinkage verifies that refined and merged snippets
// still tile the record range exactly.
func TestRefineKeepsIndexLinkage(t *testing.T) {
	m := testvenue.MustTwoFloor()
	em, err := TrainEventModel(trainingSet(t), NewGaussianNB())
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnnotator(m, em, DefaultConfig())
	g := lcg(99)
	s := seqFrom(
		stayRecords(&g, geom.Pt(8, 15), 1, t0, 40, 5*time.Second),
		walkRecords(&g, geom.Pt(8, 11), geom.Pt(25, 11), 1, t0.Add(4*time.Minute), 5*time.Second),
		stayRecords(&g, geom.Pt(25, 15), 1, t0.Add(6*time.Minute), 40, 5*time.Second),
	)
	sem := a.Annotate(s)
	next := 0
	for i, tr := range sem.Triplets {
		if tr.FirstIdx != next {
			t.Fatalf("triplet %d starts at %d, want %d", i, tr.FirstIdx, next)
		}
		if tr.LastIdx < tr.FirstIdx || tr.LastIdx >= s.Len() {
			t.Fatalf("triplet %d bad range [%d,%d]", i, tr.FirstIdx, tr.LastIdx)
		}
		next = tr.LastIdx + 1
	}
	if next != s.Len() {
		t.Fatalf("triplets cover %d of %d records", next, s.Len())
	}
}
