// Package annotation implements the Annotation layer of the TRIPS
// three-layer translation framework (paper Fig. 3) — the Mobility Semantics
// Annotator module.
//
// "A density-based splitting obtains a number of data snippets by clustering
// positioning records with respect to their spatio-temporal attributes. A
// semantic matching matches each snippet to a set of mobility semantics by
// making annotations as follows. The event and temporal annotations are made
// by a learning-based identification model ... The feature extraction
// considers the information of positioning location variance, traveling
// distance and speed, covering range, number of turns, etc. The spatial
// annotation is made by matching the semantic regions in the DSM."
//
// The package therefore has four parts: the density-based splitter
// (split.go), the movement feature extractor (features.go), the from-scratch
// learning models (model.go: Gaussian naive Bayes, multinomial logistic
// regression, CART decision tree), and the Annotator that combines event
// identification with semantic-region matching (annotate.go).
package annotation

import (
	"sort"
	"time"

	"trips/internal/position"
)

// SplitConfig parameterizes the density-based splitting.
type SplitConfig struct {
	// EpsSpace is the spatial neighborhood radius in meters.
	EpsSpace float64
	// EpsTime is the temporal neighborhood radius.
	EpsTime time.Duration
	// MinPts is the minimum number of spatio-temporal neighbors
	// (including the record itself) for a record to count as dense.
	MinPts int
	// MaxGap splits unconditionally when consecutive records are further
	// apart in time.
	MaxGap time.Duration
	// MinSnippet merges runs shorter than this many records into their
	// predecessor, suppressing classification jitter.
	MinSnippet int
	// DisableHeadMerge keeps a tiny head snippet separate instead of
	// merging it forward. The online engine sets it when splitting a
	// trimmed session tail: the tail's first snippet is not the true
	// sequence head, so the head-merge rule must not apply.
	DisableHeadMerge bool
}

// DefaultSplitConfig matches Wi-Fi indoor sampling (3–10 s period,
// 2–3 m noise).
func DefaultSplitConfig() SplitConfig {
	return SplitConfig{
		EpsSpace:   4.0,
		EpsTime:    90 * time.Second,
		MinPts:     4,
		MaxGap:     5 * time.Minute,
		MinSnippet: 3,
	}
}

// Snippet is a contiguous run of records produced by the splitting, the unit
// the identification model classifies.
type Snippet struct {
	// First and Last index the covered records in the cleaned sequence,
	// inclusive.
	First, Last int
	// Records aliases the cleaned sequence's backing array.
	Records []position.Record
	// Dense reports whether the majority of the snippet's records are
	// density-core (dwelling-like) — an input feature, not a judgment.
	Dense bool
}

// Duration returns the snippet's time span.
func (sn Snippet) Duration() time.Duration {
	if len(sn.Records) == 0 {
		return 0
	}
	return sn.Records[len(sn.Records)-1].At.Sub(sn.Records[0].At)
}

// resolved applies Split's fallback rule: an unusable neighborhood
// configuration selects the defaults wholesale.
func (cfg SplitConfig) resolved() SplitConfig {
	if cfg.EpsSpace <= 0 || cfg.MinPts <= 0 {
		return DefaultSplitConfig()
	}
	return cfg
}

// Split performs the density-based spatio-temporal splitting of a cleaned
// sequence into snippets.
func Split(s *position.Sequence, cfg SplitConfig) []Snippet {
	n := s.Len()
	if n == 0 {
		return nil
	}
	cfg = cfg.resolved()

	var cols position.Columns
	cols.Sync(s.Records, 0)
	dense := denseMask(&cols, cfg)
	smooth(dense)

	// Cut points: density class change, floor change, or a long time gap.
	var snippets []Snippet
	start := 0
	for i := 1; i < n; i++ {
		if cutAt(&cols, dense, cfg.MaxGap, i) {
			snippets = append(snippets, makeSnippet(s, dense, start, i-1))
			start = i
		}
	}
	snippets = append(snippets, makeSnippet(s, dense, start, n-1))
	return mergeTiny(s, snippets, cfg)
}

// cutAt reports whether the splitter cuts between records i-1 and i:
// density class change, floor change, or a long time gap.
//
//trips:zeroalloc
func cutAt(c *position.Columns, dense []bool, maxGap time.Duration, i int) bool {
	return dense[i] != dense[i-1] ||
		c.Floor[i] != c.Floor[i-1] ||
		c.At[i].Sub(c.At[i-1]) > maxGap
}

// denseMask marks each record that has at least MinPts spatio-temporal
// neighbors. The scan window exploits time ordering: only records within
// EpsTime can be neighbors.
func denseMask(c *position.Columns, cfg SplitConfig) []bool {
	dense := make([]bool, c.Len())
	denseMaskRange(c, cfg, dense, 0)
	return dense
}

// denseMaskRange computes the density flags for records [from, n) into
// dense (which spans the whole run): the windowed form the incremental
// annotator uses to refresh only the flags a new suffix can have touched.
// from == n is a valid empty window (an unchanged sequence re-annotated).
// It reads the struct-of-arrays projection: the O(n·window) neighborhood
// scan touches timestamps and points only, at column stride.
func denseMaskRange(c *position.Columns, cfg SplitConfig, dense []bool, from int) {
	n := c.Len()
	if from >= n {
		return
	}
	lo := 0
	if from > 0 {
		at := c.At[from]
		lo = sort.Search(from, func(j int) bool {
			return at.Sub(c.At[j]) <= cfg.EpsTime
		})
	}
	for i := from; i < n; i++ {
		ti, fi, pi := c.At[i], c.Floor[i], c.P[i]
		for ti.Sub(c.At[lo]) > cfg.EpsTime {
			lo++
		}
		dense[i] = false
		cnt := 0
		for j := lo; j < n; j++ {
			if c.At[j].Sub(ti) > cfg.EpsTime {
				break
			}
			if c.Floor[j] == fi && pi.Dist(c.P[j]) <= cfg.EpsSpace {
				cnt++
				if cnt >= cfg.MinPts {
					dense[i] = true
					break
				}
			}
		}
	}
}

// smooth applies a 3-wide majority filter to suppress single-record flips.
func smooth(mask []bool) {
	n := len(mask)
	if n < 3 {
		return
	}
	prev := mask[0]
	for i := 1; i < n-1; i++ {
		cur := mask[i]
		if prev == mask[i+1] && cur != prev {
			mask[i] = prev
		}
		prev = cur
	}
}

// smoothedAt is the indexwise form of smooth over the unfiltered flags: the
// incremental annotator keeps raw and smoothed flags separate so it can
// refresh a window without replaying the whole filter.
//
//trips:zeroalloc
func smoothedAt(raw []bool, i int) bool {
	if i == 0 || i == len(raw)-1 {
		return raw[i]
	}
	if raw[i-1] == raw[i+1] && raw[i] != raw[i-1] {
		return raw[i-1]
	}
	return raw[i]
}

func makeSnippet(s *position.Sequence, dense []bool, first, last int) Snippet {
	cnt := 0
	for i := first; i <= last; i++ {
		if dense[i] {
			cnt++
		}
	}
	return Snippet{
		First:   first,
		Last:    last,
		Records: s.Records[first : last+1],
		Dense:   cnt*2 >= last-first+1,
	}
}

// TinyJoinGap is the maximum hand-off gap for folding a tiny snippet into a
// neighbor. Exported so the online engine can size its seal horizon: once a
// snippet's end is further than this behind the watermark, no future record
// can merge backward into it.
const TinyJoinGap = 5 * time.Minute

// mergeTiny folds runs shorter than minLen records or 10 seconds into their
// predecessor (or successor for a tiny head), re-deriving the density
// majority. Floor-change and gap cuts are preserved: a tiny run is only
// merged into a neighbor on the same floor with a small join gap.
func mergeTiny(s *position.Sequence, sn []Snippet, cfg SplitConfig) []Snippet {
	return mergeTinyInto(s, sn, cfg, sn[:0])
}

// mergeTinyInto is mergeTiny appending into dst. The batch path passes
// sn[:0], folding in place (the write index never passes the read index);
// the incremental annotator passes a separate buffer so the pre-merge list
// survives as its cut cache.
func mergeTinyInto(s *position.Sequence, sn []Snippet, cfg SplitConfig, dst []Snippet) []Snippet {
	minLen := cfg.MinSnippet
	if minLen <= 1 || len(sn) <= 1 {
		return append(dst, sn...)
	}
	tiny := func(x Snippet) bool {
		return len(x.Records) < minLen || x.Duration() < 10*time.Second
	}
	out := dst
	for _, cur := range sn {
		if len(out) > 0 && tiny(cur) && joinable(out[len(out)-1], cur) {
			out[len(out)-1] = joinSnippets(s, out[len(out)-1], cur)
			continue
		}
		out = append(out, cur)
	}
	// A tiny head merges forward.
	if !cfg.DisableHeadMerge && len(out) > 1 && tiny(out[0]) && joinable(out[0], out[1]) {
		out[1] = joinSnippets(s, out[0], out[1])
		out = out[1:]
	}
	return out
}

func joinable(a, b Snippet) bool {
	la := a.Records[len(a.Records)-1]
	fb := b.Records[0]
	return la.Floor == fb.Floor && fb.At.Sub(la.At) <= TinyJoinGap
}

func joinSnippets(s *position.Sequence, a, b Snippet) Snippet {
	j := Snippet{First: a.First, Last: b.Last, Records: s.Records[a.First : b.Last+1]}
	// Density majority by length.
	if (a.Dense && len(a.Records) >= len(b.Records)) || (b.Dense && len(b.Records) > len(a.Records)) {
		j.Dense = true
	}
	return j
}
