package annotation

import (
	"testing"
	"time"

	"trips/internal/geom"
)

// TestIncrementalAnnotateSteadyStateZeroAlloc guards the incremental
// annotator's steady state: with the caches warm, re-annotating an
// unchanged sequence (stable == Len, the posture of a flush that admitted
// no new records past the frontier) must not allocate. Every stage writes
// into Incremental-owned double buffers — density flags, the SoA column
// projection, cut cache, refined snippets, triplets, and the reused output
// sequence — so the only per-call work is the suffix scans themselves.
//
//trips:guards cutAt
//trips:guards smoothedAt
func TestIncrementalAnnotateSteadyStateZeroAlloc(t *testing.T) {
	a := growAnnotator(t, DefaultConfig())
	g := lcg(7)
	s := seqFrom(
		stayRecords(&g, geom.Pt(5, 15), 1, t0, 80, 5*time.Second),
		walkRecords(&g, geom.Pt(5, 7), geom.Pt(27, 7), 1, t0.Add(7*time.Minute), 2*time.Second),
		stayRecords(&g, geom.Pt(25, 15), 1, t0.Add(12*time.Minute), 80, 5*time.Second),
	)
	inc := a.NewIncremental()
	// Warm: the first call computes from scratch, the second sizes every
	// reused buffer at the sequence's footprint.
	inc.Annotate(s, 0)
	out := inc.Annotate(s, s.Len())
	if len(out.Triplets) == 0 {
		t.Fatal("no triplets annotated; the steady state under test is empty")
	}

	if avg := testing.AllocsPerRun(200, func() {
		inc.Annotate(s, s.Len())
	}); avg != 0 {
		t.Errorf("steady-state Incremental.Annotate allocates %.2f times per call, want 0", avg)
	}
}
