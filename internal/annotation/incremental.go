package annotation

import (
	"sort"

	"trips/internal/intern"
	"trips/internal/position"
	"trips/internal/semantics"
)

// Incremental re-annotates a cleaned sequence that grows between calls in
// time proportional to the new suffix, producing exactly what
// Annotator.Annotate would. Create one per growing sequence with
// NewIncremental; not safe for concurrent use.
//
// Every stage caches what a new suffix provably cannot have changed:
//
//   - density flags are final once the watermark is more than EpsTime past
//     a record (one more record of slack for the majority smoothing);
//   - per-record region labels and split cuts depend only on record values,
//     so they are final below the caller's stable index; cached pre-merge
//     snippets wholly below the refreshed window are reused without
//     re-scanning their cuts;
//   - refined region-snippets and the final triplets are reused through an
//     aligned-prefix comparison: a snippet or consolidated group whose
//     extent, density class, and region identity are unchanged — and whose
//     records all lie below the stable index — annotates to the identical
//     triplet, so the cached one is emitted without re-running the
//     classifier.
//
// The remaining whole-tail work is copies between reused buffers and the
// cheap structural scans (tiny-snippet merge, consolidation, prefix
// comparison) over per-snippet lists; every per-record pass — density
// neighborhoods, region point location, cut detection, feature extraction,
// classification — is confined to the suffix.
type Incremental struct {
	a   *Annotator
	cfg SplitConfig // resolved, like Split resolves it

	n       int              // records covered by the last call
	cols    position.Columns // struct-of-arrays projection of the records
	raw     []bool           // pre-smooth density flags
	sm      []bool // smoothed density flags
	densePS []int  // prefix sums of sm, len n+1
	labels  []intern.ID

	snips             []Snippet       // pre-merge snippet list of the last call
	snipsScratch      []Snippet       // double buffer for snips
	merged            []Snippet       // post-mergeTiny snippets of the last call
	mergedScratch     []Snippet       // double buffer for merged
	refined           []regionSnippet // refined+matched snippets of the last call
	refinedScratch    []regionSnippet
	refinedEnd        []int // per merged snippet, end index into refined
	refinedEndScratch []int
	groups            []regionSnippet // consolidated groups of the last call
	groupsScratch     []regionSnippet
	trips             []semantics.Triplet
	tripsScratch      []semantics.Triplet

	rs  refineScratch      // refine/match buffers
	sc  Scratch            // classifier buffers
	out semantics.Sequence // reused output sequence
}

// NewIncremental returns an incremental annotator bound to a's
// configuration and model.
func (a *Annotator) NewIncremental() *Incremental {
	return &Incremental{a: a, cfg: a.Cfg.Split.resolved()}
}

// BoundTo reports whether inc was created by a. The online engine swaps
// annotator variants when a session's tail becomes a trimmed suffix; a cache
// bound to the old configuration must be rebuilt, not merely Reset.
func (inc *Incremental) BoundTo(a *Annotator) bool { return inc.a == a }

// Reset clears every cache, keeping allocated buffers; the next Annotate
// recomputes from scratch.
func (inc *Incremental) Reset() { inc.n = 0 }

// Annotate returns the annotation of s, identical to inc's Annotator
// running Annotate(s) from scratch. stable is the caller's frozen-prefix
// hint: records with index below it are unchanged — same values, same
// positions — since the previous call on this Incremental (0 forces a full
// recompute). The returned sequence is owned by the cache and reused: it and
// its triplet slice are valid only until the next Annotate or Reset call.
func (inc *Incremental) Annotate(s *position.Sequence, stable int) *semantics.Sequence {
	out := &inc.out
	out.Device = string(s.Device)
	out.Triplets = out.Triplets[:0]
	n := s.Len()
	if n == 0 {
		inc.Reset()
		return out
	}
	if n < inc.n || stable > inc.n {
		stable = 0 // shrunk or inconsistent hint: recompute everything
	}
	// Refresh the column projection for the changed suffix; the per-record
	// scans below read it instead of the full Record rows.
	inc.cols.Sync(s.Records, stable)

	// Stage 1: density flags. A changed or new record sits at index ≥
	// stable, hence (time-sorted) at or after At(stable); raw flags of
	// records more than EpsTime before that instant keep their
	// neighborhoods. The smoothing window adds one record of slack.
	f0 := n
	if stable < n {
		limit := inc.cols.At[stable].Add(-inc.cfg.EpsTime)
		f0 = sort.Search(n, func(i int) bool { return !inc.cols.At[i].Before(limit) })
		if f0 > stable {
			f0 = stable
		}
	}
	if stable == 0 {
		f0 = 0
	}
	inc.raw = growBools(inc.raw, n)
	inc.sm = growBools(inc.sm, n)
	denseMaskRange(&inc.cols, inc.cfg, inc.raw, f0)
	s0 := f0 - 1
	if s0 < 0 {
		s0 = 0
	}
	for i := s0; i < n; i++ {
		inc.sm[i] = smoothedAt(inc.raw, i)
	}
	if cap(inc.densePS) < n+1 {
		ps := make([]int, n+1, 2*(n+1)) // slack: the tail grows every flush
		copy(ps, inc.densePS)
		inc.densePS = ps
	} else {
		inc.densePS = inc.densePS[:n+1]
	}
	for i := s0; i < n; i++ {
		d := 0
		if inc.sm[i] {
			d = 1
		}
		inc.densePS[i+1] = inc.densePS[i] + d
	}

	// Stage 2: per-record region labels (point location); value-local, so
	// only the suffix re-resolves.
	inc.labels = inc.a.labelRecords(s, inc.labels, stable)

	// Stage 3: split cuts and the pre-merge snippet list. A cut at index i
	// reads records i-1 and i and their smoothed flags, all unchanged below
	// s0 (s0 < stable whenever stable > 0), so every cached snippet whose
	// closing cut sits below s0 is reused verbatim — except the final one,
	// whose end was the end of the sequence rather than a cut — and the
	// per-record scan resumes at the first boundary that may have moved.
	snips := inc.snipsScratch[:0]
	start := 0
	keepS := 0
	for keepS < len(inc.snips)-1 && inc.snips[keepS].Last+1 < s0 {
		keepS++
	}
	if keepS > 0 {
		snips = append(snips, inc.snips[:keepS]...)
		start = inc.snips[keepS-1].Last + 1
	}
	for i := start + 1; i < n; i++ {
		if cutAt(&inc.cols, inc.sm, inc.cfg.MaxGap, i) {
			snips = append(snips, inc.makeSnippetPS(s, start, i-1))
			start = i
		}
	}
	snips = append(snips, inc.makeSnippetPS(s, start, n-1))
	inc.snips, inc.snipsScratch = snips, inc.snips

	// The tiny-snippet merge writes into its own buffer so the pre-merge
	// list above survives as next call's cut cache.
	merged := mergeTinyInto(s, snips, inc.cfg, inc.mergedScratch[:0])

	// Stage 4: refine + spatial match, reusing the aligned cached prefix.
	// A merged snippet with the same extent and density class, fully below
	// the stable index, refines and matches to the identical sub-snippets.
	keep := 0
	for keep < len(merged) && keep < len(inc.merged) && keep < len(inc.refinedEnd) {
		a, b := merged[keep], inc.merged[keep]
		if a.First != b.First || a.Last != b.Last || a.Dense != b.Dense || a.Last >= stable {
			break
		}
		keep++
	}
	refined := inc.refinedScratch[:0]
	refinedEnd := inc.refinedEndScratch[:0]
	if keep > 0 {
		refined = append(refined, inc.refined[:inc.refinedEnd[keep-1]]...)
		refinedEnd = append(refinedEnd, inc.refinedEnd[:keep]...)
	}
	for _, sn := range merged[keep:] {
		refined = inc.a.refineSnippet(s, sn, inc.labels, refined, &inc.rs)
		refinedEnd = append(refinedEnd, len(refined))
	}

	// Stage 5: same-region consolidation (cheap scan), then the triplets,
	// reusing the aligned cached prefix of unchanged groups.
	groups := inc.a.consolidateInto(s, refined, inc.groupsScratch[:0])
	keepG := 0
	for keepG < len(groups) && keepG < len(inc.groups) && keepG < len(inc.trips) {
		a, b := groups[keepG], inc.groups[keepG]
		if a.sn.First != b.sn.First || a.sn.Last != b.sn.Last || a.sn.Dense != b.sn.Dense ||
			a.tag != b.tag || a.rid != b.rid || a.sn.Last >= stable {
			break
		}
		keepG++
	}
	trips := append(inc.tripsScratch[:0], inc.trips[:keepG]...)
	for _, g := range groups[keepG:] {
		trips = append(trips, inc.a.annotateSnippet(g, &inc.sc))
	}

	// Swap the double buffers and publish the caches.
	inc.refinedScratch, inc.refined = inc.refined, refined
	inc.refinedEndScratch, inc.refinedEnd = inc.refinedEnd, refinedEnd
	inc.merged, inc.mergedScratch = merged, inc.merged
	inc.tripsScratch, inc.trips = inc.trips, trips
	inc.groups, inc.groupsScratch = groups, inc.groups
	inc.n = n

	for _, t := range inc.trips {
		out.Append(t)
	}
	return out
}

// makeSnippetPS is makeSnippet with the density majority answered by the
// smoothed-flag prefix sums.
func (inc *Incremental) makeSnippetPS(s *position.Sequence, first, last int) Snippet {
	cnt := inc.densePS[last+1] - inc.densePS[first]
	return Snippet{
		First:   first,
		Last:    last,
		Records: s.Records[first : last+1],
		Dense:   cnt*2 >= last-first+1,
	}
}

// growBools resizes buf to n entries, keeping existing values. Growth
// doubles capacity: a session tail grows by a few records per flush, and
// exact-size growth would reallocate-and-copy the whole array every flush.
func growBools(buf []bool, n int) []bool {
	if cap(buf) < n {
		grown := make([]bool, n, 2*n)
		copy(grown, buf)
		return grown
	}
	return buf[:n]
}
