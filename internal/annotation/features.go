package annotation

import (
	"math"

	"trips/internal/geom"
	"trips/internal/position"
)

// FeatureNames lists the movement features, in vector order. The set
// follows the paper: "positioning location variance, traveling distance and
// speed, covering range, number of turns, etc."
var FeatureNames = []string{
	"duration_s",       // snippet time span
	"count",            // number of records
	"location_var",     // mean squared distance from the centroid
	"travel_dist",      // summed step distance
	"net_displacement", // start-to-end distance
	"mean_speed",       // travel distance / duration
	"max_step_speed",   // fastest single step
	"covering_range",   // min enclosing circle radius
	"turn_count",       // direction changes > 45°
	"turn_density",     // turns per traveled meter
	"straightness",     // net displacement / travel distance
	"dense_frac",       // 1 when the snippet is density-core
}

// NumFeatures is the feature vector length.
var NumFeatures = len(FeatureNames)

// Featurize converts a snippet into its feature vector.
func Featurize(sn Snippet) []float64 {
	return FeaturizeRecords(sn.Records, sn.Dense)
}

// FeaturizeRecords computes the feature vector of a record run. dense is the
// density flag from the splitter (or a best guess for training segments).
func FeaturizeRecords(recs []position.Record, dense bool) []float64 {
	var pts []geom.Point
	return featurizeInto(make([]float64, NumFeatures), &pts, recs, dense)
}

// featurizeInto computes the feature vector into f (len NumFeatures, zeroed
// by the caller), borrowing *pts as point scratch — the allocation-free
// inner loop behind FeaturizeRecords that the online engine's per-session
// scratch reuses across flushes.
func featurizeInto(f []float64, ptsBuf *[]geom.Point, recs []position.Record, dense bool) []float64 {
	n := len(recs)
	if n == 0 {
		return f
	}
	pts := *ptsBuf
	if cap(pts) < n {
		pts = make([]geom.Point, n)
	} else {
		pts = pts[:n]
	}
	*ptsBuf = pts
	for i, r := range recs {
		pts[i] = r.P
	}
	dur := recs[n-1].At.Sub(recs[0].At).Seconds()

	// Location variance around the centroid.
	c := geom.Centroid(pts)
	var variance float64
	for _, p := range pts {
		variance += p.Dist2(c)
	}
	variance /= float64(n)

	// Step statistics.
	var travel, maxStepSpeed float64
	for i := 1; i < n; i++ {
		d := pts[i-1].Dist(pts[i])
		travel += d
		dt := recs[i].At.Sub(recs[i-1].At).Seconds()
		if dt > 0 {
			if v := d / dt; v > maxStepSpeed {
				maxStepSpeed = v
			}
		}
	}
	net := pts[0].Dist(pts[n-1])

	meanSpeed := 0.0
	if dur > 0 {
		meanSpeed = travel / dur
	}
	cover := geom.MinEnclosingCircle(pts).Radius
	turns := (geom.Polyline{Points: pts}).TurnCount(math.Pi / 4)
	turnDensity := 0.0
	if travel > 1 {
		turnDensity = float64(turns) / travel
	}
	straight := 0.0
	if travel > geom.Eps {
		straight = net / travel
	}
	denseF := 0.0
	if dense {
		denseF = 1
	}

	f[0] = dur
	f[1] = float64(n)
	f[2] = variance
	f[3] = travel
	f[4] = net
	f[5] = meanSpeed
	f[6] = maxStepSpeed
	f[7] = cover
	f[8] = float64(turns)
	f[9] = turnDensity
	f[10] = straight
	f[11] = denseF
	return f
}

// Scaler standardizes feature vectors to zero mean and unit variance, fitted
// on training data. Constant features scale to zero.
type Scaler struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// FitScaler learns per-dimension statistics from X.
func FitScaler(X [][]float64) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	d := len(X[0])
	sc := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, x := range X {
		for j, v := range x {
			sc.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range sc.Mean {
		sc.Mean[j] /= n
	}
	for _, x := range X {
		for j, v := range x {
			dv := v - sc.Mean[j]
			sc.Std[j] += dv * dv
		}
	}
	for j := range sc.Std {
		sc.Std[j] = math.Sqrt(sc.Std[j] / n)
	}
	return sc
}

// Transform returns the standardized copy of x.
func (sc *Scaler) Transform(x []float64) []float64 {
	return sc.transformInto(make([]float64, len(x)), x)
}

// transformInto standardizes x into out (len(x), zeroed by the caller).
func (sc *Scaler) transformInto(out, x []float64) []float64 {
	if len(sc.Mean) == 0 {
		copy(out, x)
		return out
	}
	for j, v := range x {
		if sc.Std[j] > 1e-12 {
			out[j] = (v - sc.Mean[j]) / sc.Std[j]
		}
	}
	return out
}

// TransformAll standardizes a whole design matrix.
func (sc *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, x := range X {
		out[i] = sc.Transform(x)
	}
	return out
}
