// Package testvenue builds small, fully-connected indoor venues for tests
// across the TRIPS packages. It is a test-support package: production code
// must not import it.
package testvenue

import (
	"fmt"

	"trips/internal/dsm"
	"trips/internal/geom"
)

// TwoFloor returns a frozen two-floor venue:
//
//	floor 1: hallway H1 (0,0)-(40,10); rooms R101/R102/R103 at (0|10|20,
//	10.4)-(+10, 20) with doors D101/D102/D103 in the dividing wall;
//	staircase S1F at (35,0)-(40,5).
//	floor 2: hallway H2, room R201 with door D201, staircase S2F.
//
// Regions: Adidas→R101, Nike→R102, Cashier→R103, Center Hall→H1, Books→R201.
func TwoFloor() (*dsm.Model, error) {
	m := dsm.New("test-venue")
	rect := func(x0, y0, x1, y1 float64) geom.Polygon {
		return geom.NewRect(geom.Pt(x0, y0), geom.Pt(x1, y1)).ToPolygon()
	}
	add := func(id string, k dsm.EntityKind, f dsm.FloorID, shape geom.Polygon, name string) {
		m.AddEntity(&dsm.Entity{ID: dsm.EntityID(id), Kind: k, Name: name, Floor: f, Shape: shape})
	}
	add("H1", dsm.KindHallway, 1, rect(0, 0, 40, 10), "Hall 1F")
	add("R101", dsm.KindRoom, 1, rect(0, 10.4, 10, 20), "Shop 101")
	add("R102", dsm.KindRoom, 1, rect(10, 10.4, 20, 20), "Shop 102")
	add("R103", dsm.KindRoom, 1, rect(20, 10.4, 30, 20), "Shop 103")
	add("W1", dsm.KindWall, 1, rect(0, 10, 40, 10.4), "dividing wall")
	add("D101", dsm.KindDoor, 1, rect(4, 10, 6, 10.4), "door 101")
	add("D102", dsm.KindDoor, 1, rect(14, 10, 16, 10.4), "door 102")
	add("D103", dsm.KindDoor, 1, rect(24, 10, 26, 10.4), "door 103")
	add("S1F", dsm.KindStaircase, 1, rect(35, 0, 40, 5), "Stairs A")
	add("H2", dsm.KindHallway, 2, rect(0, 0, 40, 10), "Hall 2F")
	add("R201", dsm.KindRoom, 2, rect(0, 10.4, 10, 20), "Shop 201")
	add("D201", dsm.KindDoor, 2, rect(4, 10, 6, 10.4), "door 201")
	add("S2F", dsm.KindStaircase, 2, rect(35, 0, 40, 5), "Stairs A")

	reg := func(id, tag, cat string, f dsm.FloorID, shape geom.Polygon, ents ...dsm.EntityID) {
		m.AddRegion(&dsm.SemanticRegion{ID: dsm.RegionID(id), Tag: tag, Category: cat,
			Floor: f, Shape: shape, Entities: ents})
	}
	reg("rg-adidas", "Adidas", "shop", 1, rect(0, 10.4, 10, 20), "R101")
	reg("rg-nike", "Nike", "shop", 1, rect(10, 10.4, 20, 20), "R102")
	reg("rg-cashier", "Cashier", "service", 1, rect(20, 10.4, 30, 20), "R103")
	reg("rg-hall", "Center Hall", "hall", 1, rect(0, 0, 40, 10), "H1")
	reg("rg-books", "Books", "shop", 2, rect(0, 10.4, 10, 20), "R201")

	if err := m.Freeze(); err != nil {
		return nil, fmt.Errorf("testvenue: %w", err)
	}
	return m, nil
}

// MustTwoFloor panics on error; for test setup.
func MustTwoFloor() *dsm.Model {
	m, err := TwoFloor()
	if err != nil {
		panic(err)
	}
	return m
}
