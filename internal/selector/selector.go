// Package selector implements the Data Selector module of the TRIPS
// Configurator.
//
// The Data Selector "offers users a set of configurable and combinable rules
// to select the (device) positioning sequences of particular interest.
// Typical rules include device ID pattern, spatial range, temporal range,
// positioning frequency, and periodic pattern." (paper Sec. 2)
//
// A Rule judges a whole positioning sequence. Rules combine with And, Or and
// Not. Select applies a rule to a dataset and returns the accepted
// sequences; some rules also trim the sequences they accept (e.g. the
// temporal range keeps only in-window records, mirroring the walk-through's
// "only appear during the mall's operating hours").
package selector

import (
	"fmt"
	"path"
	"strings"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
)

// Rule accepts or rejects one positioning sequence, optionally returning a
// trimmed replacement. Returning (nil, false) rejects; (s, true) accepts s.
type Rule interface {
	// Apply judges the sequence. Implementations must not mutate s; rules
	// that trim return a derived sequence.
	Apply(s *position.Sequence) (*position.Sequence, bool)
	// Describe returns a human-readable summary for configuration review.
	Describe() string
}

// Select runs the rule over every sequence of the dataset and returns a new
// dataset of the accepted (possibly trimmed) sequences, leaving ds intact.
func Select(ds *position.Dataset, r Rule) *position.Dataset {
	out := position.NewDataset()
	for _, s := range ds.Sequences() {
		if t, ok := r.Apply(s); ok && !t.Empty() {
			out.AddSequence(t)
		}
	}
	return out
}

// DevicePattern accepts devices whose ID matches a shell-style glob
// ("3a.*" in the demo's anonymized MAC display).
type DevicePattern struct{ Glob string }

// Apply implements Rule.
func (r DevicePattern) Apply(s *position.Sequence) (*position.Sequence, bool) {
	ok, err := path.Match(r.Glob, string(s.Device))
	if err != nil || !ok {
		return nil, false
	}
	return s, true
}

// Describe implements Rule.
func (r DevicePattern) Describe() string { return fmt.Sprintf("device matches %q", r.Glob) }

// TimeRange keeps the records within [From, To) and accepts the sequence if
// any remain. Zero From/To leave that side unbounded.
type TimeRange struct {
	From, To time.Time
}

// Apply implements Rule.
func (r TimeRange) Apply(s *position.Sequence) (*position.Sequence, bool) {
	from, to := r.From, r.To
	if from.IsZero() {
		from = s.Start()
	}
	if to.IsZero() {
		to = s.End().Add(time.Nanosecond)
	}
	w := s.TimeWindow(from, to)
	if w.Empty() {
		return nil, false
	}
	return w, true
}

// Describe implements Rule.
func (r TimeRange) Describe() string {
	return fmt.Sprintf("time in [%s, %s)", fmtTime(r.From), fmtTime(r.To))
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return "-"
	}
	return t.Format(time.RFC3339)
}

// DailyWindow keeps records whose local time-of-day falls within
// [StartHour, EndHour) on every day — the "operating hours 10:00 AM - 10:00
// PM" filter of the walk-through. Hours are 0–24 in the dataset's location.
type DailyWindow struct {
	StartHour, EndHour int
}

// Apply implements Rule.
func (r DailyWindow) Apply(s *position.Sequence) (*position.Sequence, bool) {
	out := position.NewSequence(s.Device)
	for _, rec := range s.Records {
		h := rec.At.Hour()
		if h >= r.StartHour && h < r.EndHour {
			out.Append(rec)
		}
	}
	if out.Empty() {
		return nil, false
	}
	return out, true
}

// Describe implements Rule.
func (r DailyWindow) Describe() string {
	return fmt.Sprintf("daily hours [%02d:00, %02d:00)", r.StartHour, r.EndHour)
}

// SpatialRange accepts sequences having at least MinRecords records inside
// the rectangle on the given floor. Floor 0 with AnyFloor set matches any
// floor. It does not trim: the walk-through selects sequences that "appear
// on the ground floor", then translates them whole.
type SpatialRange struct {
	Rect       geom.Rect
	Floor      dsm.FloorID
	AnyFloor   bool
	MinRecords int
}

// Apply implements Rule.
func (r SpatialRange) Apply(s *position.Sequence) (*position.Sequence, bool) {
	min := r.MinRecords
	if min <= 0 {
		min = 1
	}
	n := 0
	for _, rec := range s.Records {
		if (r.AnyFloor || rec.Floor == r.Floor) && r.Rect.Contains(rec.P) {
			n++
			if n >= min {
				return s, true
			}
		}
	}
	return nil, false
}

// Describe implements Rule.
func (r SpatialRange) Describe() string {
	return fmt.Sprintf("≥%d records in %v floor %v", max(1, r.MinRecords), r.Rect, r.Floor)
}

// MinDuration accepts sequences spanning at least D — "positioning sequences
// that last for more than one hour".
type MinDuration struct{ D time.Duration }

// Apply implements Rule.
func (r MinDuration) Apply(s *position.Sequence) (*position.Sequence, bool) {
	if s.Duration() < r.D {
		return nil, false
	}
	return s, true
}

// Describe implements Rule.
func (r MinDuration) Describe() string { return fmt.Sprintf("duration ≥ %s", r.D) }

// Frequency accepts sequences whose mean sampling period is at most
// MaxPeriod (i.e. sampled frequently enough to translate reliably).
type Frequency struct{ MaxPeriod time.Duration }

// Apply implements Rule.
func (r Frequency) Apply(s *position.Sequence) (*position.Sequence, bool) {
	if s.Len() < 2 || s.MeanPeriod() > r.MaxPeriod {
		return nil, false
	}
	return s, true
}

// Describe implements Rule.
func (r Frequency) Describe() string { return fmt.Sprintf("mean period ≤ %s", r.MaxPeriod) }

// MinRecords accepts sequences with at least N records.
type MinRecords struct{ N int }

// Apply implements Rule.
func (r MinRecords) Apply(s *position.Sequence) (*position.Sequence, bool) {
	if s.Len() < r.N {
		return nil, false
	}
	return s, true
}

// Describe implements Rule.
func (r MinRecords) Describe() string { return fmt.Sprintf("≥ %d records", r.N) }

// Periodic accepts devices that appear on at least MinDays distinct days —
// the "periodic pattern" rule (e.g. staff devices returning daily).
type Periodic struct{ MinDays int }

// Apply implements Rule.
func (r Periodic) Apply(s *position.Sequence) (*position.Sequence, bool) {
	days := make(map[string]bool)
	for _, rec := range s.Records {
		days[rec.At.Format("2006-01-02")] = true
	}
	if len(days) < r.MinDays {
		return nil, false
	}
	return s, true
}

// Describe implements Rule.
func (r Periodic) Describe() string { return fmt.Sprintf("appears on ≥ %d days", r.MinDays) }

// Combinators ---------------------------------------------------------------

// And accepts when every child accepts, threading trimmed sequences through
// the chain in order.
type And []Rule

// Apply implements Rule.
func (rs And) Apply(s *position.Sequence) (*position.Sequence, bool) {
	cur := s
	for _, r := range rs {
		next, ok := r.Apply(cur)
		if !ok {
			return nil, false
		}
		cur = next
	}
	return cur, true
}

// Describe implements Rule.
func (rs And) Describe() string { return combine(rs, " AND ") }

// Or accepts when any child accepts, returning the first child's result.
type Or []Rule

// Apply implements Rule.
func (rs Or) Apply(s *position.Sequence) (*position.Sequence, bool) {
	for _, r := range rs {
		if out, ok := r.Apply(s); ok {
			return out, true
		}
	}
	return nil, false
}

// Describe implements Rule.
func (rs Or) Describe() string { return combine(rs, " OR ") }

// Not inverts its child's acceptance; trimming is discarded.
type Not struct{ Rule Rule }

// Apply implements Rule.
func (r Not) Apply(s *position.Sequence) (*position.Sequence, bool) {
	if _, ok := r.Rule.Apply(s); ok {
		return nil, false
	}
	return s, true
}

// Describe implements Rule.
func (r Not) Describe() string { return "NOT (" + r.Rule.Describe() + ")" }

// All accepts everything; the identity for And.
type All struct{}

// Apply implements Rule.
func (All) Apply(s *position.Sequence) (*position.Sequence, bool) { return s, true }

// Describe implements Rule.
func (All) Describe() string { return "all" }

func combine(rs []Rule, sep string) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = r.Describe()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
