package selector

import (
	"strings"
	"testing"
	"time"

	"trips/internal/dsm"
	"trips/internal/geom"
	"trips/internal/position"
)

var t0 = time.Date(2017, 1, 2, 9, 0, 0, 0, time.UTC)

func seq(dev string, n int, period time.Duration, start time.Time) *position.Sequence {
	s := position.NewSequence(position.DeviceID(dev))
	for i := 0; i < n; i++ {
		s.Append(position.Record{
			Device: s.Device,
			P:      geom.Pt(float64(i), 0),
			Floor:  dsm.FloorID(1),
			At:     start.Add(time.Duration(i) * period),
		})
	}
	return s
}

func dataset(seqs ...*position.Sequence) *position.Dataset {
	ds := position.NewDataset()
	for _, s := range seqs {
		ds.AddSequence(s)
	}
	return ds
}

func TestDevicePattern(t *testing.T) {
	ds := dataset(seq("3a.bb.14", 3, time.Second, t0), seq("zz.01", 3, time.Second, t0))
	got := Select(ds, DevicePattern{Glob: "3a.*"})
	if got.NumDevices() != 1 || got.Sequence("3a.bb.14") == nil {
		t.Errorf("selected %v", got.Devices())
	}
	// Invalid glob rejects everything rather than erroring.
	if got := Select(ds, DevicePattern{Glob: "[bad"}); got.NumDevices() != 0 {
		t.Error("invalid glob should select nothing")
	}
}

func TestTimeRangeTrims(t *testing.T) {
	ds := dataset(seq("d", 10, time.Minute, t0))
	r := TimeRange{From: t0.Add(3 * time.Minute), To: t0.Add(6 * time.Minute)}
	got := Select(ds, r)
	s := got.Sequence("d")
	if s == nil || s.Len() != 3 {
		t.Fatalf("trimmed = %v", s)
	}
	// Entirely outside: rejected.
	r2 := TimeRange{From: t0.Add(time.Hour), To: t0.Add(2 * time.Hour)}
	if got := Select(ds, r2); got.NumDevices() != 0 {
		t.Error("out-of-window sequence kept")
	}
	// Unbounded sides keep everything.
	if got := Select(ds, TimeRange{}); got.Sequence("d").Len() != 10 {
		t.Error("unbounded range trimmed records")
	}
	// The original dataset is untouched.
	if ds.Sequence("d").Len() != 10 {
		t.Error("Select mutated its input")
	}
}

func TestDailyWindow(t *testing.T) {
	// Records at 9:00 and every 30 min after; window 10-22 keeps those from
	// 10:00 onward.
	ds := dataset(seq("d", 6, 30*time.Minute, t0)) // 9:00..11:30
	got := Select(ds, DailyWindow{StartHour: 10, EndHour: 22})
	s := got.Sequence("d")
	if s == nil || s.Len() != 4 {
		t.Fatalf("daily window kept %v records", s.Len())
	}
	for _, rec := range s.Records {
		if rec.At.Hour() < 10 {
			t.Errorf("record at %v outside window", rec.At)
		}
	}
}

func TestSpatialRange(t *testing.T) {
	ds := dataset(seq("d", 10, time.Second, t0)) // x = 0..9 on floor 1
	in := SpatialRange{Rect: geom.NewRect(geom.Pt(0, -1), geom.Pt(4, 1)), Floor: 1, MinRecords: 3}
	if got := Select(ds, in); got.NumDevices() != 1 {
		t.Error("in-range sequence rejected")
	}
	wrongFloor := SpatialRange{Rect: geom.NewRect(geom.Pt(0, -1), geom.Pt(4, 1)), Floor: 2}
	if got := Select(ds, wrongFloor); got.NumDevices() != 0 {
		t.Error("wrong floor accepted")
	}
	anyFloor := SpatialRange{Rect: geom.NewRect(geom.Pt(0, -1), geom.Pt(4, 1)), AnyFloor: true}
	if got := Select(ds, anyFloor); got.NumDevices() != 1 {
		t.Error("AnyFloor rejected")
	}
	tooMany := SpatialRange{Rect: geom.NewRect(geom.Pt(0, -1), geom.Pt(4, 1)), Floor: 1, MinRecords: 6}
	if got := Select(ds, tooMany); got.NumDevices() != 0 {
		t.Error("MinRecords threshold ignored")
	}
}

func TestDurationFrequencyMinRecords(t *testing.T) {
	short := seq("short", 5, time.Second, t0)       // 4s span
	long := seq("long", 100, time.Minute, t0)       // 99m span
	sparse := seq("sparse", 10, 10*time.Minute, t0) // period 10m
	ds := dataset(short, long, sparse)

	if got := Select(ds, MinDuration{D: time.Hour}); got.NumDevices() != 2 {
		t.Errorf("MinDuration selected %v", got.Devices())
	}
	if got := Select(ds, Frequency{MaxPeriod: 2 * time.Minute}); got.NumDevices() != 2 {
		t.Errorf("Frequency selected %v", got.Devices())
	}
	if got := Select(ds, MinRecords{N: 50}); got.NumDevices() != 1 {
		t.Errorf("MinRecords selected %v", got.Devices())
	}
	// Single-record sequences fail Frequency.
	one := dataset(seq("one", 1, time.Second, t0))
	if got := Select(one, Frequency{MaxPeriod: time.Hour}); got.NumDevices() != 0 {
		t.Error("single record passed Frequency")
	}
}

func TestPeriodic(t *testing.T) {
	s := position.NewSequence("p")
	for day := 0; day < 3; day++ {
		for i := 0; i < 2; i++ {
			s.Append(position.Record{Device: "p", P: geom.Pt(0, 0), Floor: 1,
				At: t0.Add(time.Duration(day)*24*time.Hour + time.Duration(i)*time.Minute)})
		}
	}
	ds := dataset(s, seq("q", 5, time.Minute, t0))
	if got := Select(ds, Periodic{MinDays: 3}); got.NumDevices() != 1 || got.Sequence("p") == nil {
		t.Errorf("Periodic selected %v", got.Devices())
	}
}

func TestCombinators(t *testing.T) {
	ds := dataset(
		seq("3a.long", 100, time.Minute, t0),
		seq("3a.short", 3, time.Second, t0),
		seq("zz.long", 100, time.Minute, t0),
	)
	and := And{DevicePattern{Glob: "3a.*"}, MinDuration{D: time.Hour}}
	if got := Select(ds, and); got.NumDevices() != 1 || got.Sequence("3a.long") == nil {
		t.Errorf("And selected %v", got.Devices())
	}
	or := Or{DevicePattern{Glob: "zz.*"}, MinRecords{N: 50}}
	if got := Select(ds, or); got.NumDevices() != 2 {
		t.Errorf("Or selected %v", got.Devices())
	}
	not := Not{Rule: DevicePattern{Glob: "3a.*"}}
	if got := Select(ds, not); got.NumDevices() != 1 || got.Sequence("zz.long") == nil {
		t.Errorf("Not selected %v", got.Devices())
	}
	if got := Select(ds, All{}); got.NumDevices() != 3 {
		t.Errorf("All selected %v", got.Devices())
	}
	// And threads trimming: time-trim then duration check on trimmed data.
	and2 := And{
		TimeRange{From: t0, To: t0.Add(10 * time.Minute)},
		MinRecords{N: 5},
	}
	got := Select(ds, and2)
	if got.Sequence("3a.long") == nil || got.Sequence("3a.long").Len() != 10 {
		t.Errorf("And trimming wrong: %v", got.Devices())
	}
}

func TestDescribe(t *testing.T) {
	r := And{
		DevicePattern{Glob: "3a.*"},
		Or{MinDuration{D: time.Hour}, MinRecords{N: 10}},
		Not{Rule: Periodic{MinDays: 2}},
	}
	d := r.Describe()
	for _, want := range []string{"3a.*", "AND", "OR", "NOT", "days"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe = %q missing %q", d, want)
		}
	}
	if (All{}).Describe() != "all" {
		t.Error("All describe")
	}
}
